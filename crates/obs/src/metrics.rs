//! Lock-free metric primitives: [`Counter`], [`Gauge`], and a mergeable
//! log2-bucketed [`Histogram`].
//!
//! All three record with relaxed atomic read-modify-writes — no locks, no
//! allocation — so they are safe to touch from the ingest hot path and from
//! concurrent reader threads. Consistency across *different* atomics is not
//! guaranteed within one snapshot (a snapshot taken mid-record may see the
//! bucket increment but not yet the sum increment); every exported quantity
//! is monotone per thread, which is what trend dashboards and budget gates
//! need.
//!
//! # Histogram bucket scheme and error bound
//!
//! [`Histogram`] buckets the full `u64` range with a log2 layout subdivided
//! linearly, HDR-histogram style, with `SUB_BITS = 3`:
//!
//! - values `0..8` get one exact bucket each;
//! - every octave `[2^e, 2^(e+1))` for `e ≥ 3` is split into 8 equal-width
//!   sub-buckets keyed by the 3 bits after the leading one.
//!
//! That is [`Histogram::NUM_BUCKETS`] = 496 buckets total (8 + 61 octaves × 8)
//! of 8 bytes each — ~4 KiB per histogram. A bucket starting at
//! `lower = (8 + sub) << (e - 3)` has width `2^(e - 3)`, so
//! `width / lower = 1 / (8 + sub) ≤ 1/8`: any value reported from its bucket
//! upper bound overestimates the true value by **at most 12.5%** (and never
//! underestimates). Quantiles are rank-selected over the bucket counts, so
//! for the rank-`⌈qn⌉` definition used by [`HistogramSnapshot::quantile`],
//! `exact ≤ reported ≤ exact × 1.125` — the bound `tests/prop_obs.rs`
//! verifies against exact sorted-sample quantiles.

use serde::{Json, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotone event counter. `inc`/`add` are single relaxed `fetch_add`s.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zero the counter in place (handles stay valid).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins signed level (arena bytes live, snapshots outstanding,
/// an EWMA…). `set`/`add` are single relaxed atomics.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Overwrite with a `u64`, saturating at `i64::MAX`.
    #[inline]
    pub fn set_u64(&self, v: u64) {
        self.set(v.min(i64::MAX as u64) as i64);
    }

    /// Move the level by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zero the gauge in place (handles stay valid).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of linear sub-buckets per octave, as a power of two.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave (8).
const SUB: u64 = 1 << SUB_BITS;

/// A lock-free log2-bucketed histogram of `u64` samples (typically
/// nanoseconds or bytes).
///
/// [`Histogram::record`] is a handful of relaxed `fetch_add`s — wait-free,
/// allocation-free, safe from any thread. See the [module docs](self) for
/// the bucket scheme and the ≤12.5% relative error bound on reported
/// quantiles. [`Histogram::merge`] adds another histogram's buckets into
/// this one, so per-thread shards can be combined at snapshot time with no
/// coordination during recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; Histogram::NUM_BUCKETS]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Total bucket count: 8 exact unit buckets + 61 octaves (e = 3..=63)
    /// × 8 sub-buckets = 496.
    pub const NUM_BUCKETS: usize = (8 + (64 - SUB_BITS) * SUB as u32) as usize;

    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        // `AtomicU64` is not `Copy`; build the boxed array from a zeroed vec.
        let v: Vec<AtomicU64> = (0..Histogram::NUM_BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect();
        let buckets: Box<[AtomicU64; Histogram::NUM_BUCKETS]> =
            v.into_boxed_slice().try_into().expect("exact length");
        Histogram {
            buckets,
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: exact below 8, then octave × 8 + the 3 bits
    /// after the leading one.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v < SUB {
            v as usize
        } else {
            let e = 63 - v.leading_zeros();
            let sub = (v >> (e - SUB_BITS)) - SUB;
            (((e - 2) as u64 * SUB) + sub) as usize
        }
    }

    /// Inclusive value range `[lower, upper]` covered by bucket `idx`.
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        if idx < SUB as usize {
            (idx as u64, idx as u64)
        } else {
            let e = (idx as u32 / SUB as u32) + 2;
            let sub = idx as u64 & (SUB - 1);
            let lower = (SUB + sub) << (e - SUB_BITS);
            let width = 1u64 << (e - SUB_BITS);
            (lower, lower + (width - 1))
        }
    }

    /// Record one sample. A few relaxed atomic RMWs; wait-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Histogram::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Add every sample of `other` into `self` (bucket-wise atomic adds).
    /// Equivalent to having recorded the concatenation of both streams.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n != 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time plain copy for quantile math and export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; Histogram::NUM_BUCKETS];
        let mut count = 0u64;
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
            count += *dst;
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Zero the histogram in place (handles stay valid). Not atomic with
    /// respect to concurrent `record`s — callers quiesce recording threads
    /// first, as a reset mid-traffic has no meaningful semantics anyway.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A plain (non-atomic) copy of a [`Histogram`]'s state, supporting
/// quantile queries and off-thread merging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wraps on overflow; ~584 years of nanoseconds).
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Per-bucket counts, `Histogram::NUM_BUCKETS` entries.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot (identity for [`HistogramSnapshot::merge`]).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![0; Histogram::NUM_BUCKETS],
        }
    }

    /// Fold another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the rank-`⌈q·count⌉` sample. Guaranteed `exact ≤ reported ≤
    /// exact × 1.125` against the same-rank exact sorted-sample quantile;
    /// `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Histogram::bucket_bounds(idx).1;
            }
        }
        self.max
    }

    /// Arithmetic mean of the samples (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The fixed percentile set exported by the registry.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

/// The exported shape of one histogram: counts plus the standard
/// percentile set, ready for JSON and the text exposition format.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct HistogramSummary {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Median (bucket upper bound; ≤12.5% relative error).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

impl HistogramSummary {
    /// Render as the stable `key=value` run used by the text exposition.
    pub fn to_text(&self) -> String {
        format!(
            "count={} sum={} p50={} p90={} p99={} max={}",
            self.count, self.sum, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// Exponentially weighted moving average with α = 1/4, the same smoothing
/// the engine's self-tuning GC budget uses: `next = (3·prev + sample) / 4`,
/// seeding from the first sample.
#[inline]
pub fn ewma_u64(prev: Option<u64>, sample: u64) -> u64 {
    match prev {
        None => sample,
        Some(p) => (p.saturating_mul(3).saturating_add(sample)) / 4,
    }
}

impl Serialize for HistogramSnapshot {
    fn to_json(&self) -> Json {
        self.summary().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_are_consistent() {
        let mut prev = None;
        for &v in &[
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            100,
            1 << 20,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = Histogram::bucket_index(v);
            assert!(idx < Histogram::NUM_BUCKETS, "idx {idx} for {v}");
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert!(
                lo <= v && v <= hi,
                "{v} outside [{lo}, {hi}] of bucket {idx}"
            );
            if let Some(p) = prev {
                assert!(idx >= p);
            }
            prev = Some(idx);
        }
        // Exhaustive containment + monotonicity over the small range.
        for v in 0u64..100_000 {
            let idx = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert!(lo <= v && v <= hi);
        }
    }

    #[test]
    fn quantiles_respect_the_error_bound() {
        let h = Histogram::new();
        let samples: Vec<u64> = (0..10_000).map(|i| (i * i) % 1_000_003).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count, samples.len() as u64);
        assert_eq!(snap.max, *sorted.last().unwrap());
        for &q in &[0.0, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = snap.quantile(q);
            assert!(est >= exact, "q={q}: est {est} < exact {exact}");
            assert!(
                est as f64 <= exact as f64 * 1.125 + 1.0,
                "q={q}: est {est} > 1.125 × exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for i in 0..1000u64 {
            let v = i * 37 % 4096;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn gauge_and_counter_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::new();
        g.set(5);
        g.add(-8);
        assert_eq!(g.get(), -3);
        g.set_u64(u64::MAX);
        assert_eq!(g.get(), i64::MAX);
    }

    #[test]
    fn ewma_matches_gc_budget_smoothing() {
        assert_eq!(ewma_u64(None, 16), 16);
        assert_eq!(ewma_u64(Some(16), 16), 16);
        assert_eq!(ewma_u64(Some(0), 16), 4);
        assert_eq!(ewma_u64(Some(100), 0), 75);
    }
}
