//! # nrc-obs
//!
//! The unified observability layer of the NRC⁺ IVM stack: a process-wide
//! lock-free metrics [`Registry`] plus a per-batch flight recorder
//! ([`trace`]), hand-rolled on `std` per the workspace's no-registry
//! constraint.
//!
//! Every layer (engine, data/arena, serve, durable) continuously reports
//! into the global registry under hierarchical dotted names, so **one**
//! [`snapshot()`] call observes the whole stack:
//!
//! ```
//! use nrc_obs as obs;
//!
//! obs::counter("demo.events").inc();
//! obs::histogram("demo.latency_ns").record(1_234);
//! let snap = obs::snapshot();
//! assert_eq!(snap.counters["demo.events"], 1);
//! println!("{}", snap.to_text());       // stable text exposition
//! println!("{}", snap.to_json_string()); // JSON export
//! ```
//!
//! Instrumented call sites follow one pattern — cache the handle, branch on
//! the global switch, pay a relaxed `fetch_add` when on:
//!
//! ```
//! use nrc_obs as obs;
//! use std::sync::LazyLock;
//!
//! static APPLIES: LazyLock<std::sync::Arc<obs::Counter>> =
//!     LazyLock::new(|| obs::counter("engine.batch.applies"));
//! if obs::enabled() {
//!     APPLIES.inc();
//! }
//! ```
//!
//! The [`trace`] module adds the time dimension: a fixed-capacity ring of
//! per-batch stage timelines (coalesce → refresh → GC → publish → WAL
//! append → fsync → checkpoint) for post-mortem of the slowest batches.
//! Overhead is priced by experiment E17 and gated in CI at ≤5% of bare
//! ingest.

pub mod metrics;
pub mod registry;
pub mod trace;

pub use metrics::{ewma_u64, Counter, Gauge, Histogram, HistogramSnapshot, HistogramSummary};
pub use registry::{enabled, global, set_enabled, MetricsSnapshot, Registry};
pub use trace::{BatchTrace, FlightRecorder, StageSpan, TraceBuilder};

use std::sync::Arc;

/// Shared handle to the counter `name` in the [global] registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Shared handle to the gauge `name` in the [global] registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Shared handle to the default shard of histogram `name` in the [global]
/// registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// A fresh private shard of histogram `name` in the [global] registry —
/// one per recording thread; all shards merge at snapshot.
pub fn histogram_shard(name: &str) -> Arc<Histogram> {
    global().histogram_shard(name)
}

/// Point-in-time export of the [global] registry.
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}
