//! Arena-independent binary encoding of values (the durability seam).
//!
//! The hash-consing arena (PRs 3–4) makes in-memory bags and dictionaries
//! webs of [`Vid`](crate::Vid)s — slot indices and generations that are
//! meaningless outside the process that interned them, and that change under
//! GC slot reuse. Durability therefore never writes ids: **encoding resolves
//! every id to its value** through the intern seam (`Bag::iter`,
//! `Dictionary::iter` resolve on read) and **decoding re-interns** into
//! whatever arena the reading process has. A checkpoint written before a
//! thousand collections replays into a fresh arena bit-for-bit equal at the
//! value level, and a `StaleVid` can never leak into (or out of) the on-disk
//! format: resolution happens eagerly at encode time, while the encoding
//! side still holds the bag that keeps its slots retained.
//!
//! The format is a length-prefixed tag/payload tree over little-endian
//! integers — hand-rolled on `std` per the vendoring constraint, with no
//! reflection or derive machinery. It is *self-delimiting* (every `decode_*`
//! consumes exactly what the matching `encode_*` produced) so callers can
//! concatenate records freely, and *defensive*: every length field is
//! checked against the remaining input before allocation, so truncated or
//! garbage payloads fail with [`CodecError`] instead of aborting on a
//! multi-gigabyte reservation.

use crate::bag::Bag;
use crate::base::{BaseType, BaseValue};
use crate::dict::{Dictionary, Label};
use crate::types::Type;
use crate::value::Value;
use std::fmt;

/// A malformed byte stream: truncated input, an unknown tag, or a length
/// field larger than the remaining bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// What the decoder was reading when it failed.
    pub detail: String,
}

impl CodecError {
    /// A decode failure (exposed for layered formats — the durability
    /// crate's catalog records report their own tag/version mismatches
    /// through the same error).
    pub fn new(detail: impl Into<String>) -> CodecError {
        CodecError {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed encoding: {}", self.detail)
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------- tags

const TAG_BOOL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_TUPLE: u8 = 3;
const TAG_BAG: u8 = 4;
const TAG_LABEL: u8 = 5;
const TAG_DICT: u8 = 6;

const TYPE_BOOL: u8 = 0;
const TYPE_INT: u8 = 1;
const TYPE_STR: u8 = 2;
const TYPE_TUPLE: u8 = 3;
const TYPE_BAG: u8 = 4;
const TYPE_LABEL: u8 = 5;
const TYPE_DICT: u8 = 6;

// ---------------------------------------------------------------- writing

/// Append a little-endian `u32` (exposed for layered formats — the
/// durability crate builds its record framing from these primitives).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_len(out: &mut Vec<u8>, len: usize, what: &str) {
    let len = u32::try_from(len).unwrap_or_else(|_| panic!("{what} length exceeds u32::MAX"));
    put_u32(out, len);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len(), "string");
    out.extend_from_slice(s.as_bytes());
}

/// Append the encoding of `v` to `out`, resolving interned ids to values.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Base(BaseValue::Bool(b)) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Base(BaseValue::Int(i)) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Base(BaseValue::Str(s)) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
        Value::Tuple(vs) => {
            out.push(TAG_TUPLE);
            put_len(out, vs.len(), "tuple");
            for c in vs {
                encode_value(c, out);
            }
        }
        Value::Bag(b) => {
            out.push(TAG_BAG);
            encode_bag(b, out);
        }
        Value::Label(l) => {
            out.push(TAG_LABEL);
            encode_label(l, out);
        }
        Value::Dict(d) => {
            out.push(TAG_DICT);
            put_len(out, d.support_size(), "dictionary");
            for (l, b) in d.iter() {
                encode_label(l, out);
                encode_bag(b, out);
            }
        }
    }
}

/// Append the encoding of `b` (distinct count, then `(value, multiplicity)`
/// pairs in canonical order, values fully resolved).
pub fn encode_bag(b: &Bag, out: &mut Vec<u8>) {
    put_len(out, b.distinct_count(), "bag");
    for (v, m) in b.iter() {
        encode_value(v, out);
        out.extend_from_slice(&m.to_le_bytes());
    }
}

fn encode_label(l: &Label, out: &mut Vec<u8>) {
    put_u32(out, l.index);
    put_len(out, l.args.len(), "label args");
    for a in &l.args {
        encode_value(a, out);
    }
}

/// Append the encoding of a type annotation (checkpoints persist relation
/// schemas alongside their bags).
pub fn encode_type(t: &Type, out: &mut Vec<u8>) {
    match t {
        Type::Base(BaseType::Bool) => out.push(TYPE_BOOL),
        Type::Base(BaseType::Int) => out.push(TYPE_INT),
        Type::Base(BaseType::Str) => out.push(TYPE_STR),
        Type::Tuple(ts) => {
            out.push(TYPE_TUPLE);
            put_len(out, ts.len(), "tuple type");
            for c in ts {
                encode_type(c, out);
            }
        }
        Type::Bag(inner) => {
            out.push(TYPE_BAG);
            encode_type(inner, out);
        }
        Type::Label => out.push(TYPE_LABEL),
        Type::Dict(inner) => {
            out.push(TYPE_DICT);
            encode_type(inner, out);
        }
    }
}

// ---------------------------------------------------------------- reading

/// A cursor over an input slice; all `decode_*` functions consume from the
/// front and leave the remainder for the caller.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Succeeds only if every byte was consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CodecError::new(format!(
                "{} trailing bytes after value",
                self.buf.len()
            )))
        }
    }

    /// Consume `n` raw bytes (`what` names the field in errors).
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::new(format!(
                "truncated {what}: need {n} bytes, have {}",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Consume one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Consume a little-endian `i64`.
    pub fn i64(&mut self, what: &str) -> Result<i64, CodecError> {
        let b = self.take(8, what)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// A length field, sanity-checked against the remaining input: every
    /// encoded element occupies at least one byte, so a count larger than
    /// `remaining` is unconditionally garbage and is rejected *before* any
    /// allocation sized by it.
    pub fn len(&mut self, what: &str) -> Result<usize, CodecError> {
        let n = self.u32(what)? as usize;
        if n > self.buf.len() {
            return Err(CodecError::new(format!(
                "{what} count {n} exceeds {} remaining bytes",
                self.buf.len()
            )));
        }
        Ok(n)
    }

    /// Consume a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<String, CodecError> {
        let n = self.len(what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::new(format!("{what} is not valid UTF-8")))
    }
}

/// Decode one value, re-interning its parts into the current arena.
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value, CodecError> {
    match r.u8("value tag")? {
        TAG_BOOL => match r.u8("bool")? {
            0 => Ok(Value::bool(false)),
            1 => Ok(Value::bool(true)),
            other => Err(CodecError::new(format!("bool byte {other}"))),
        },
        TAG_INT => Ok(Value::int(r.i64("int")?)),
        TAG_STR => Ok(Value::Base(BaseValue::Str(r.str("string")?))),
        TAG_TUPLE => {
            let n = r.len("tuple")?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(decode_value(r)?);
            }
            Ok(Value::Tuple(vs))
        }
        TAG_BAG => Ok(Value::Bag(decode_bag(r)?)),
        TAG_LABEL => Ok(Value::Label(decode_label(r)?)),
        TAG_DICT => {
            let n = r.len("dictionary")?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let l = decode_label(r)?;
                let b = decode_bag(r)?;
                pairs.push((l, b));
            }
            Ok(Value::Dict(Dictionary::from_pairs(pairs)))
        }
        other => Err(CodecError::new(format!("unknown value tag {other}"))),
    }
}

/// Decode one bag; interning happens entry by entry, then the collected
/// pairs are sorted/coalesced once and the bag picks its representation
/// tier by size with a single batched retain pass (`Bag::from_pairs` is
/// the bulk construction funnel — no per-entry tree inserts).
pub fn decode_bag(r: &mut Reader<'_>) -> Result<Bag, CodecError> {
    let n = r.len("bag")?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let v = decode_value(r)?;
        let m = r.i64("multiplicity")?;
        pairs.push((v, m));
    }
    Ok(Bag::from_pairs(pairs))
}

fn decode_label(r: &mut Reader<'_>) -> Result<Label, CodecError> {
    let index = r.u32("label index")?;
    let n = r.len("label args")?;
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        args.push(decode_value(r)?);
    }
    Ok(Label::new(index, args))
}

/// Decode one type annotation.
pub fn decode_type(r: &mut Reader<'_>) -> Result<Type, CodecError> {
    match r.u8("type tag")? {
        TYPE_BOOL => Ok(Type::Base(BaseType::Bool)),
        TYPE_INT => Ok(Type::Base(BaseType::Int)),
        TYPE_STR => Ok(Type::Base(BaseType::Str)),
        TYPE_TUPLE => {
            let n = r.len("tuple type")?;
            let mut ts = Vec::with_capacity(n);
            for _ in 0..n {
                ts.push(decode_type(r)?);
            }
            Ok(Type::Tuple(ts))
        }
        TYPE_BAG => Ok(Type::bag(decode_type(r)?)),
        TYPE_LABEL => Ok(Type::Label),
        TYPE_DICT => Ok(Type::dict(decode_type(r)?)),
        other => Err(CodecError::new(format!("unknown type tag {other}"))),
    }
}

// ------------------------------------------------------------ conveniences

/// Encode a single value to a fresh buffer.
pub fn value_to_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(v, &mut out);
    out
}

/// Decode a single value occupying the whole buffer.
pub fn value_from_bytes(buf: &[u8]) -> Result<Value, CodecError> {
    let mut r = Reader::new(buf);
    let v = decode_value(&mut r)?;
    r.finish()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let bytes = value_to_bytes(v);
        let back = value_from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
        // Self-delimiting: two concatenated copies decode back to two.
        let mut twice = bytes.clone();
        twice.extend_from_slice(&bytes);
        let mut r = Reader::new(&twice);
        assert_eq!(&decode_value(&mut r).expect("first"), v);
        assert_eq!(&decode_value(&mut r).expect("second"), v);
        r.finish().expect("nothing trailing");
    }

    #[test]
    fn base_values_round_trip() {
        round_trip(&Value::bool(true));
        round_trip(&Value::bool(false));
        round_trip(&Value::int(0));
        round_trip(&Value::int(i64::MIN));
        round_trip(&Value::int(i64::MAX));
        round_trip(&Value::str(""));
        round_trip(&Value::str("héllo ⟨ι⟩ wörld"));
        round_trip(&Value::unit());
    }

    #[test]
    fn nested_values_round_trip() {
        let bag = Bag::from_pairs([
            (Value::pair(Value::str("a"), Value::int(1)), 3),
            (Value::pair(Value::str("b"), Value::int(2)), -2),
        ]);
        round_trip(&Value::Bag(bag.clone()));
        round_trip(&Value::Tuple(vec![
            Value::Bag(bag.clone()),
            Value::str("outer"),
            Value::Bag(Bag::from_values([Value::Bag(bag.clone())])),
        ]));
        let label = Label::new(7, vec![Value::str("Drive"), Value::int(4)]);
        round_trip(&Value::Label(label.clone()));
        round_trip(&Value::Dict(Dictionary::from_pairs([
            (label, bag),
            (Label::atomic(2), Bag::empty()),
        ])));
    }

    #[test]
    fn types_round_trip() {
        for t in [
            Type::Base(BaseType::Bool),
            Type::Base(BaseType::Int),
            Type::Base(BaseType::Str),
            Type::unit(),
            Type::bag(Type::pair(Type::Base(BaseType::Str), Type::Label)),
            Type::dict(Type::bag(Type::Base(BaseType::Int))),
        ] {
            let mut out = Vec::new();
            encode_type(&t, &mut out);
            let mut r = Reader::new(&out);
            assert_eq!(decode_type(&mut r).expect("decode"), t);
            r.finish().expect("nothing trailing");
        }
    }

    #[test]
    fn truncated_inputs_error_instead_of_panicking() {
        let bytes = value_to_bytes(&Value::Tuple(vec![
            Value::str("truncation-probe"),
            Value::int(9),
        ]));
        for cut in 0..bytes.len() {
            let err = value_from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn oversized_length_fields_are_rejected_before_allocation() {
        // A bag claiming u32::MAX entries with no bytes behind it.
        let mut buf = vec![TAG_BAG];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = value_from_bytes(&buf).expect_err("garbage length");
        assert!(err.detail.contains("count"), "got {err}");
    }

    #[test]
    fn unknown_tags_error() {
        assert!(value_from_bytes(&[250]).is_err());
        let mut r = Reader::new(&[99]);
        assert!(decode_type(&mut r).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = value_to_bytes(&Value::int(5));
        bytes.push(0);
        assert!(value_from_bytes(&bytes).is_err());
    }

    /// The arena-independence property at the unit level: a bag encoded,
    /// decoded (re-interned), and re-encoded is byte-identical — the format
    /// carries no ids, so it cannot depend on slot assignment.
    #[test]
    fn reencoding_is_byte_stable() {
        let v = Value::Bag(Bag::from_pairs([
            (Value::str("codec-stable-a"), 2),
            (Value::pair(Value::str("codec-stable-b"), Value::int(-4)), 1),
        ]));
        let first = value_to_bytes(&v);
        let back = value_from_bytes(&first).expect("decode");
        assert_eq!(value_to_bytes(&back), first);
    }
}
