//! # nrc-data
//!
//! Data substrate for the NRC⁺ incremental view maintenance system of
//! Koch, Lupei and Tannen, *Incremental View Maintenance for Collection
//! Programming* (PODS 2016).
//!
//! This crate provides the value universe the calculus computes over:
//!
//! * [`BaseValue`]/[`BaseType`] — primitive database domain values,
//! * [`Value`]/[`Type`] — nested tuple/bag values and their types,
//! * [`Bag`] — *generalized bags* whose elements carry (possibly negative)
//!   integer multiplicities, with bag addition `⊎` summing multiplicities.
//!   Semantically bags form a commutative group (§3 of the paper), which is
//!   exactly the structure delta processing requires: for any two bag values
//!   `old` and `new` there is a `Δ` with `new = old ⊎ Δ`,
//! * [`Label`]/[`Dictionary`] — the label and label-dictionary machinery of
//!   the shredding transformation (§5), including the crucial distinction
//!   between dictionary *addition* `⊎` (pointwise, can modify definitions)
//!   and *label union* `∪` (support union, definitions must agree —
//!   Appendix C.2),
//! * [`Database`] — a named collection of top-level bags with schemas.
//!
//! Everything is totally ordered ([`Ord`]) so bags of bags, dictionary keys,
//! and deterministic pretty-printing work without hashing nested structures.
//!
//! Underneath the value-level API sits the hash-consing layer of
//! [`intern`]: every distinct nested value is interned once into a global
//! arena and addressed by a `Copy` id ([`Vid`]) with cached hash, canonical
//! rank and depth. [`Bag`] contents and [`Dictionary`] supports key on ids,
//! so equality is `O(1)`, ordering is an integer compare in the common case,
//! and the algebraic combinators never deep-clone value trees. The
//! value-level API is preserved by resolving ids on read; `*_id` methods
//! expose the id-native fast path.
//!
//! The arena is *collectible*: bag/dictionary maps maintain per-slot live
//! counts, and [`intern::collect`] reclaims values no map references
//! anymore, reusing their slots under fresh generation tags (stale ids fail
//! deterministically). See the reclamation section of [`intern`] and the
//! epoch-pin API ([`intern::pin`], [`ArenaStats`]).
//!
//! [`Bag`] itself is *two-tier*: below [`Bag::SMALL_TIER_MAX`] distinct
//! elements a bag is one columnar sorted `Vec<(Vid, i64)>` whose merges are
//! linear passes with batched arena retains; above it, a shared
//! copy-on-write tree whose clones are `O(1)`. The tiers share one
//! canonical form, so they are indistinguishable through the public API —
//! see the [`bag`] module docs.

pub mod bag;
pub mod base;
pub mod codec;
pub mod database;
pub mod dict;
pub mod error;
pub mod intern;
mod livemap;
pub mod types;
pub mod value;

pub use bag::Bag;
pub use base::{BaseType, BaseValue};
pub use codec::CodecError;
pub use database::Database;
pub use dict::{Dictionary, Label};
pub use error::DataError;
pub use intern::{ArenaStats, CollectStats, Epoch, EpochPin, Vid};
pub use types::Type;
pub use value::Value;
