//! Generalized bags with integer multiplicities.
//!
//! §3 of the paper: *"we use a generalized notion of bag where elements have
//! (possibly negative) integer multiplicities and bag addition ⊎ sums
//! multiplicities as integers"*. Bags with `∅`, `⊎` and `⊖` form a
//! commutative group; this is the algebraic structure in which deltas live —
//! for any `old`, `new` there is `Δ` with `new = old ⊎ Δ`.
//!
//! The invariant maintained throughout is that **no element is stored with
//! multiplicity zero**, so structural equality coincides with semantic bag
//! equality.
//!
//! Since the hash-consing refactor the element keys are interned
//! [`Vid`]s rather than materialized [`Value`] trees: equality and hashing
//! of elements are `O(1)`, ordering is an integer rank compare in the common
//! case, and the algebraic combinators (`⊎`, `⊖`, scaling, flatten) never
//! clone a value tree. The value-level API (`iter`, `insert`,
//! `multiplicity`, …) is preserved by resolving ids on read; the `*_id`
//! methods expose the id-native fast path for hot call sites.

use crate::error::DataError;
use crate::intern::{self, Vid};
use crate::livemap::VidMap;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A generalized bag of [`Value`]s.
///
/// Internally a sorted map from interned element id to non-zero
/// multiplicity, giving canonical representation, deterministic iteration
/// (identical to the seed's value-keyed order — `Ord` on [`Vid`] refines the
/// canonical `Ord` on [`Value`]), `O(log n)` lookup with `O(1)` key
/// comparisons, and `O(min(n, m))`-ish union.
/// The map is reference-counted with copy-on-write semantics: cloning a bag
/// (e.g. binding relations into evaluation environments, or snapshotting the
/// database before an update) is O(1); the map is copied only when a shared
/// bag is mutated.
///
/// The element keys participate in arena reclamation: the map (a
/// `VidMap`) retains each key's arena slot while present and releases it
/// on removal/drop, which is what lets `intern::collect` reclaim values no
/// bag references anymore.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Bag {
    elems: Arc<VidMap<i64>>,
}

impl Bag {
    /// The empty bag `∅`.
    pub fn empty() -> Bag {
        Bag::default()
    }

    /// The singleton bag `{v}` (multiplicity 1).
    pub fn singleton(v: Value) -> Bag {
        Bag::singleton_id(intern::intern(v))
    }

    /// The singleton bag over an already-interned element.
    pub fn singleton_id(id: Vid) -> Bag {
        let mut b = Bag::empty();
        b.insert_id(id, 1);
        b
    }

    /// Build a bag from values, each with multiplicity 1 (duplicates sum).
    pub fn from_values<I: IntoIterator<Item = Value>>(values: I) -> Bag {
        let mut b = Bag::empty();
        for v in values {
            b.insert(v, 1);
        }
        b
    }

    /// Build a bag from `(value, multiplicity)` pairs (duplicates sum, zeros
    /// dropped).
    pub fn from_pairs<I: IntoIterator<Item = (Value, i64)>>(pairs: I) -> Bag {
        let mut b = Bag::empty();
        for (v, m) in pairs {
            b.insert(v, m);
        }
        b
    }

    /// Build a bag from `(id, multiplicity)` pairs (duplicates sum, zeros
    /// dropped) — the id-native sibling of [`Bag::from_pairs`].
    pub fn from_id_pairs<I: IntoIterator<Item = (Vid, i64)>>(pairs: I) -> Bag {
        let mut b = Bag::empty();
        for (id, m) in pairs {
            b.insert_id(id, m);
        }
        b
    }

    /// Add `mult` copies of `v` (negative removes). Zero-multiplicity
    /// entries are dropped to preserve the canonical-form invariant.
    pub fn insert(&mut self, v: Value, mult: i64) {
        if mult == 0 {
            return;
        }
        self.insert_id(intern::intern(v), mult);
    }

    /// Id-native [`Bag::insert`]: add `mult` copies of an interned element.
    /// Multiplicity addition is overflow-checked — silent wrap-around would
    /// corrupt the group structure undetectably.
    pub fn insert_id(&mut self, id: Vid, mult: i64) {
        self.try_insert_id(id, mult)
            .expect("bag multiplicity overflow in ⊎");
    }

    /// [`Bag::insert_id`] that surfaces multiplicity-addition overflow as
    /// [`DataError::Overflow`] instead of panicking — the building block of
    /// the fallible accumulation paths ([`Bag::union_assign_scaled`],
    /// [`Bag::flatten`]).
    pub fn try_insert_id(&mut self, id: Vid, mult: i64) -> Result<(), DataError> {
        if mult == 0 {
            return Ok(());
        }
        Arc::make_mut(&mut self.elems).upsert_with(id, |current| match current {
            None => Ok(Some(mult)),
            Some(&m) => {
                let new = m.checked_add(mult).ok_or(DataError::Overflow { op: "⊎" })?;
                Ok((new != 0).then_some(new))
            }
        })
    }

    /// The multiplicity of `v` (0 when absent). Probing for a value that was
    /// never interned does not intern it.
    pub fn multiplicity(&self, v: &Value) -> i64 {
        intern::lookup(v).map_or(0, |id| self.multiplicity_id(id))
    }

    /// Id-native [`Bag::multiplicity`].
    pub fn multiplicity_id(&self, id: Vid) -> i64 {
        self.elems.get(&id).copied().unwrap_or(0)
    }

    /// Is this the empty bag?
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Number of *distinct* elements.
    pub fn distinct_count(&self) -> usize {
        self.elems.len()
    }

    /// Cardinality "including repetitions" (§2.2, Ex. 5): the sum of the
    /// absolute multiplicities. Deletions weigh as much as insertions — a
    /// delta of 5 deletions has cardinality 5.
    pub fn cardinality(&self) -> u64 {
        self.elems.values().map(|m| m.unsigned_abs()).sum()
    }

    /// Sum of signed multiplicities (the "net" size; can be negative for
    /// delta bags).
    pub fn net_cardinality(&self) -> i64 {
        self.elems.values().sum()
    }

    /// Are all multiplicities non-negative (i.e. is this a *proper* bag
    /// rather than a signed delta)?
    pub fn is_proper(&self) -> bool {
        self.elems.values().all(|&m| m >= 0)
    }

    /// Iterate over `(element, multiplicity)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, i64)> {
        self.elems.iter().map(|(id, &m)| (id.value(), m))
    }

    /// Iterate over `(id, multiplicity)` pairs in canonical order — the
    /// id-native sibling of [`Bag::iter`] (no resolution, `Copy` items).
    pub fn ids(&self) -> impl Iterator<Item = (Vid, i64)> + '_ {
        self.elems.iter().map(|(&id, &m)| (id, m))
    }

    /// The smallest element's id, if any (also the interner's rank seed for
    /// bags-as-values).
    pub(crate) fn first_id(&self) -> Option<Vid> {
        self.elems.keys().next().copied()
    }

    /// Iterate over elements, repeated `multiplicity` times. Panics in debug
    /// builds if any multiplicity is negative; intended for proper bags.
    pub fn iter_expanded(&self) -> impl Iterator<Item = &Value> {
        self.elems.iter().flat_map(|(id, &m)| {
            debug_assert!(m >= 0, "iter_expanded over a signed delta bag");
            std::iter::repeat_n(id.value(), m.max(0) as usize)
        })
    }

    /// Bag addition `⊎`: sums multiplicities, dropping zeros.
    #[must_use = "`union` returns a new bag and leaves `self` unchanged"]
    pub fn union(&self, other: &Bag) -> Bag {
        // Merge the smaller into a clone of the larger (union of two
        // materialized bags costs time proportional to the smaller one, the
        // assumption made in the §2.2 cost analysis). Keys are `Copy` ids:
        // no value tree is cloned.
        let (mut big, small) = if self.elems.len() >= other.elems.len() {
            (self.clone(), other)
        } else {
            (other.clone(), self)
        };
        for (id, m) in small.ids() {
            big.insert_id(id, m);
        }
        big
    }

    /// In-place bag addition `self ⊎= other`.
    pub fn union_assign(&mut self, other: &Bag) {
        for (id, m) in other.ids() {
            self.insert_id(id, m);
        }
    }

    /// In-place scaled addition `self ⊎= k · other` without materializing
    /// the scaled intermediate — the inner step of `for`-loop accumulation
    /// (`acc ⊎= m · body`) and of flatten.
    pub fn union_assign_scaled(&mut self, other: &Bag, k: i64) -> Result<(), DataError> {
        if k == 0 {
            return Ok(());
        }
        for (id, m) in other.ids() {
            let scaled = m
                .checked_mul(k)
                .ok_or(DataError::Overflow { op: "scaled ⊎" })?;
            self.try_insert_id(id, scaled)?;
        }
        Ok(())
    }

    /// Extend-style `⊎`: add every `(value, multiplicity)` pair from an
    /// iterator, summing collisions and dropping zeros. The batch-oriented
    /// sibling of [`Bag::union_assign`], used when coalescing many deltas
    /// without materializing each as a separate bag first.
    pub fn extend_pairs<I: IntoIterator<Item = (Value, i64)>>(&mut self, pairs: I) {
        for (v, m) in pairs {
            self.insert(v, m);
        }
    }

    /// Id-native [`Bag::extend_pairs`].
    pub fn extend_id_pairs<I: IntoIterator<Item = (Vid, i64)>>(&mut self, pairs: I) {
        for (id, m) in pairs {
            self.insert_id(id, m);
        }
    }

    /// Coalesce many bags into one by `⊎` in a single pre-sized pass.
    ///
    /// All pairs are gathered and sorted once (by interned id — an integer
    /// rank compare), multiplicities of equal elements are summed, zeros
    /// dropped, and the result map is bulk-built from the sorted run —
    /// `O(N log N)` in the total number of entries, with none of the
    /// per-bag rebalancing that a fold of [`Bag::union`]s performs. This is
    /// the primitive behind batched update coalescing
    /// (`δ(u₁ ⊎ u₂ ⊎ …)` preprocessing).
    ///
    /// ```
    /// use nrc_data::{Bag, Value};
    /// let a = Bag::from_pairs([(Value::int(1), 2)]);
    /// let b = Bag::from_pairs([(Value::int(1), -2), (Value::int(2), 1)]);
    /// let c = Bag::from_pairs([(Value::int(3), 4)]);
    /// let merged = Bag::union_many([&a, &b, &c]);
    /// assert_eq!(merged, a.union(&b).union(&c));
    /// ```
    #[must_use = "`union_many` returns the coalesced bag"]
    pub fn union_many<'a, I: IntoIterator<Item = &'a Bag>>(bags: I) -> Bag {
        let bags: Vec<&Bag> = bags.into_iter().collect();
        match bags.len() {
            0 => return Bag::empty(),
            1 => return bags[0].clone(),
            _ => {}
        }
        let total: usize = bags.iter().map(|b| b.distinct_count()).sum();
        let mut pairs: Vec<(Vid, i64)> = Vec::with_capacity(total);
        for b in &bags {
            pairs.extend(b.ids());
        }
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let mut merged: Vec<(Vid, i64)> = Vec::with_capacity(pairs.len());
        for (id, m) in pairs {
            match merged.last_mut() {
                Some((last, acc)) if *last == id => {
                    *acc = acc.checked_add(m).expect("bag multiplicity overflow in ⊎")
                }
                _ => {
                    if let Some((_, 0)) = merged.last() {
                        merged.pop();
                    }
                    merged.push((id, m));
                }
            }
        }
        if let Some((_, 0)) = merged.last() {
            merged.pop();
        }
        Bag {
            elems: Arc::new(merged.into_iter().collect()),
        }
    }

    /// Bag negation `⊖`: negates every multiplicity.
    #[must_use = "`negate` returns a new bag and leaves `self` unchanged"]
    pub fn negate(&self) -> Bag {
        Bag {
            elems: Arc::new(
                self.elems
                    .iter()
                    .map(|(&id, &m)| (id, m.checked_neg().expect("bag multiplicity overflow in ⊖")))
                    .collect(),
            ),
        }
    }

    /// Group difference `self ⊎ ⊖(other)` — *not* the truncating bag minus
    /// (which is non-incrementalizable, Appendix A.2); multiplicities may go
    /// negative.
    #[must_use = "`difference` returns a new bag and leaves `self` unchanged"]
    pub fn difference(&self, other: &Bag) -> Bag {
        self.union(&other.negate())
    }

    /// Multiply every multiplicity by `k` (`k = 0` yields `∅`), failing with
    /// [`DataError::Overflow`] instead of silently wrapping.
    pub fn scale(&self, k: i64) -> Result<Bag, DataError> {
        match k {
            0 => return Ok(Bag::empty()),
            1 => return Ok(self.clone()),
            _ => {}
        }
        let elems = self
            .elems
            .iter()
            .map(|(&id, &m)| {
                m.checked_mul(k)
                    .map(|scaled| (id, scaled))
                    .ok_or(DataError::Overflow { op: "scale" })
            })
            .collect::<Result<VidMap<_>, _>>()?;
        Ok(Bag {
            elems: Arc::new(elems),
        })
    }

    /// Map every element through `f`, summing multiplicities of collisions.
    #[must_use = "`map` returns a new bag and leaves `self` unchanged"]
    pub fn map<F: FnMut(&Value) -> Value>(&self, mut f: F) -> Bag {
        let mut out = Bag::empty();
        for (v, m) in self.iter() {
            out.insert(f(v), m);
        }
        out
    }

    /// The delta taking `self` to `target`: `target ⊎ ⊖(self)`.
    ///
    /// This realizes the group property quoted in §3: such a delta always
    /// exists.
    #[must_use = "`delta_to` returns the delta bag without applying it"]
    pub fn delta_to(&self, target: &Bag) -> Bag {
        target.difference(self)
    }

    /// Cartesian product: `{⟨v, w⟩ ↦ m·n | v ↦ m ∈ self, w ↦ n ∈ other}`,
    /// failing with [`DataError::Overflow`] when a multiplicity product
    /// exceeds `i64`.
    pub fn product(&self, other: &Bag) -> Result<Bag, DataError> {
        let mut out = Bag::empty();
        for (v, m) in self.iter() {
            for (w, n) in other.iter() {
                let mult = m
                    .checked_mul(n)
                    .ok_or(DataError::Overflow { op: "product" })?;
                out.insert(Value::pair(v.clone(), w.clone()), mult);
            }
        }
        Ok(out)
    }

    /// Flatten a bag of bags: `⊎_{v ∈ self} v`, weighting each inner bag by
    /// the multiplicity of its occurrence (linear in the input, matching the
    /// `flatten` cost rule of Fig. 5). Id-native: inner elements flow into
    /// the result as interned ids, no value tree is rebuilt.
    pub fn flatten(&self) -> Result<Bag, crate::error::DataError> {
        let mut out = Bag::empty();
        for (id, m) in self.ids() {
            let inner = id.value().as_bag()?;
            out.union_assign_scaled(inner, m)
                .map_err(|_| DataError::Overflow { op: "flatten" })?;
        }
        Ok(out)
    }
}

impl FromIterator<Value> for Bag {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Bag::from_values(iter)
    }
}

impl fmt::Debug for Bag {
    /// Debug renders resolved elements (not raw ids) so test failures stay
    /// readable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, m)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if m == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{v}^{m}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(items: &[(i64, i64)]) -> Bag {
        Bag::from_pairs(items.iter().map(|&(v, m)| (Value::int(v), m)))
    }

    #[test]
    fn empty_and_singleton() {
        assert!(Bag::empty().is_empty());
        let s = Bag::singleton(Value::int(7));
        assert_eq!(s.multiplicity(&Value::int(7)), 1);
        assert_eq!(s.cardinality(), 1);
    }

    #[test]
    fn insert_cancels_to_zero() {
        let mut bag = Bag::empty();
        bag.insert(Value::int(1), 3);
        bag.insert(Value::int(1), -3);
        assert!(bag.is_empty());
        assert_eq!(bag, Bag::empty()); // canonical form ⇒ structural equality
    }

    #[test]
    fn union_sums_multiplicities() {
        let x = b(&[(1, 2), (2, 1)]);
        let y = b(&[(1, -2), (3, 4)]);
        let u = x.union(&y);
        assert_eq!(u, b(&[(2, 1), (3, 4)]));
        // ⊎ is commutative.
        assert_eq!(u, y.union(&x));
    }

    #[test]
    fn group_laws_hold() {
        let x = b(&[(1, 2), (2, -5)]);
        let y = b(&[(2, 5), (9, 1)]);
        let z = b(&[(1, 1)]);
        // associativity, identity, inverse
        assert_eq!(x.union(&y).union(&z), x.union(&y.union(&z)));
        assert_eq!(x.union(&Bag::empty()), x);
        assert_eq!(x.union(&x.negate()), Bag::empty());
    }

    #[test]
    fn delta_to_recovers_target() {
        let old = b(&[(1, 3), (2, 1)]);
        let new = b(&[(1, 1), (5, 2)]);
        let delta = old.delta_to(&new);
        assert_eq!(old.union(&delta), new);
    }

    #[test]
    fn cardinality_counts_absolute_multiplicities() {
        let d = b(&[(1, 3), (2, -2)]);
        assert_eq!(d.cardinality(), 5);
        assert_eq!(d.net_cardinality(), 1);
        assert!(!d.is_proper());
        assert!(b(&[(1, 1)]).is_proper());
    }

    #[test]
    fn product_multiplies_multiplicities() {
        let x = b(&[(1, 2)]);
        let y = b(&[(10, 3)]);
        let p = x.product(&y).unwrap();
        assert_eq!(
            p.multiplicity(&Value::pair(Value::int(1), Value::int(10))),
            6
        );
        assert_eq!(p.distinct_count(), 1);
    }

    #[test]
    fn product_distributes_over_union() {
        let x = b(&[(1, 2), (2, 1)]);
        let y = b(&[(3, 1)]);
        let z = b(&[(3, 2), (4, -1)]);
        assert_eq!(
            x.product(&y.union(&z)).unwrap(),
            x.product(&y).unwrap().union(&x.product(&z).unwrap())
        );
    }

    #[test]
    fn flatten_unions_inner_bags_weighted() {
        let inner1 = b(&[(1, 1), (2, 1)]);
        let inner2 = b(&[(2, 3)]);
        let mut outer = Bag::empty();
        outer.insert(Value::Bag(inner1), 2); // two copies of {1,2}
        outer.insert(Value::Bag(inner2), 1);
        let flat = outer.flatten().unwrap();
        assert_eq!(flat, b(&[(1, 2), (2, 5)]));
    }

    #[test]
    fn flatten_of_non_bag_errors() {
        let outer = Bag::from_values([Value::int(3)]);
        assert!(outer.flatten().is_err());
    }

    #[test]
    fn scale_and_negate() {
        let x = b(&[(1, 2), (2, -1)]);
        assert_eq!(x.scale(3).unwrap(), b(&[(1, 6), (2, -3)]));
        assert_eq!(x.scale(0).unwrap(), Bag::empty());
        assert_eq!(x.negate().negate(), x);
    }

    #[test]
    fn scale_and_product_detect_overflow() {
        let x = b(&[(1, i64::MAX / 2 + 1)]);
        assert_eq!(x.scale(2), Err(DataError::Overflow { op: "scale" }));
        let y = b(&[(2, 2)]);
        assert_eq!(x.product(&y), Err(DataError::Overflow { op: "product" }));
        let mut outer = Bag::empty();
        outer.insert(Value::Bag(x), 2);
        assert_eq!(outer.flatten(), Err(DataError::Overflow { op: "flatten" }));
        let mut acc = Bag::empty();
        assert!(acc.union_assign_scaled(&b(&[(1, i64::MAX)]), 2).is_err());
        // Accumulator-side addition overflow surfaces as an error too (not
        // a panic): MAX + 1.
        let mut acc = b(&[(1, i64::MAX)]);
        assert_eq!(
            acc.union_assign_scaled(&b(&[(1, 1)]), 1),
            Err(DataError::Overflow { op: "⊎" })
        );
        assert_eq!(
            acc.try_insert_id(crate::intern::intern(Value::int(1)), 1),
            Err(DataError::Overflow { op: "⊎" })
        );
    }

    #[test]
    fn iter_expanded_repeats() {
        let x = b(&[(4, 2), (7, 1)]);
        let vs: Vec<i64> = x
            .iter_expanded()
            .map(|v| match v {
                Value::Base(crate::base::BaseValue::Int(i)) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vs, vec![4, 4, 7]);
    }

    #[test]
    fn map_merges_collisions() {
        let x = b(&[(1, 2), (-1, 3)]);
        let squared = x.map(|v| match v {
            Value::Base(crate::base::BaseValue::Int(i)) => Value::int(i * i),
            _ => unreachable!(),
        });
        assert_eq!(squared, b(&[(1, 5)]));
    }

    #[test]
    fn union_many_matches_folded_union() {
        let bags = [
            b(&[(1, 2), (2, -1)]),
            b(&[(1, -2), (3, 4)]),
            b(&[(2, 1), (3, -4), (5, 1)]),
            Bag::empty(),
        ];
        let folded = bags.iter().fold(Bag::empty(), |acc, x| acc.union(x));
        assert_eq!(Bag::union_many(bags.iter()), folded);
        assert_eq!(Bag::union_many([]), Bag::empty());
        assert_eq!(Bag::union_many([&bags[0]]), bags[0]);
    }

    #[test]
    fn union_many_cancels_to_canonical_form() {
        let x = b(&[(1, 3), (2, 1)]);
        let nx = x.negate();
        let merged = Bag::union_many([&x, &nx]);
        assert!(merged.is_empty());
        assert_eq!(merged, Bag::empty());
    }

    #[test]
    fn extend_pairs_sums_collisions() {
        let mut bag = b(&[(1, 1)]);
        bag.extend_pairs([(Value::int(1), 2), (Value::int(2), 1), (Value::int(2), -1)]);
        assert_eq!(bag, b(&[(1, 3)]));
    }

    #[test]
    fn id_native_api_matches_value_api() {
        let mut by_value = Bag::empty();
        let mut by_id = Bag::empty();
        for (v, m) in [
            (Value::int(3), 2),
            (Value::str("x"), -1),
            (Value::int(3), 1),
        ] {
            by_value.insert(v.clone(), m);
            by_id.insert_id(crate::intern::intern(v), m);
        }
        assert_eq!(by_value, by_id);
        assert_eq!(
            by_value.multiplicity_id(crate::intern::intern(Value::int(3))),
            3
        );
        let ids: Vec<_> = by_value.ids().collect();
        let values: Vec<_> = by_value.iter().collect();
        assert_eq!(ids.len(), values.len());
        for ((id, im), (v, vm)) in ids.iter().zip(&values) {
            assert_eq!(id.value(), *v);
            assert_eq!(im, vm);
        }
        assert_eq!(Bag::from_id_pairs(ids), by_value);
    }

    #[test]
    fn union_assign_scaled_matches_scale_then_union() {
        let mut acc = b(&[(1, 1), (2, 2)]);
        let rhs = b(&[(1, 2), (3, -1)]);
        let mut expected = acc.clone();
        expected.union_assign(&rhs.scale(-3).unwrap());
        acc.union_assign_scaled(&rhs, -3).unwrap();
        assert_eq!(acc, expected);
    }

    #[test]
    fn display_shows_multiplicities() {
        let x = b(&[(1, 1), (2, 3)]);
        assert_eq!(x.to_string(), "{1, 2^3}");
    }

    #[test]
    fn bags_nest_and_order() {
        let inner_a = Value::Bag(b(&[(1, 1)]));
        let inner_b = Value::Bag(b(&[(2, 1)]));
        let outer = Bag::from_values([inner_a.clone(), inner_b.clone()]);
        assert_eq!(outer.multiplicity(&inner_a), 1);
        assert!(inner_a < inner_b);
    }
}
