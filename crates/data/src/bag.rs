//! Generalized bags with integer multiplicities.
//!
//! §3 of the paper: *"we use a generalized notion of bag where elements have
//! (possibly negative) integer multiplicities and bag addition ⊎ sums
//! multiplicities as integers"*. Bags with `∅`, `⊎` and `⊖` form a
//! commutative group; this is the algebraic structure in which deltas live —
//! for any `old`, `new` there is `Δ` with `new = old ⊎ Δ`.
//!
//! The invariant maintained throughout is that **no element is stored with
//! multiplicity zero**, so structural equality coincides with semantic bag
//! equality.
//!
//! Since the hash-consing refactor the element keys are interned
//! [`Vid`]s rather than materialized [`Value`] trees: equality and hashing
//! of elements are `O(1)`, ordering is an integer rank compare in the common
//! case, and the algebraic combinators (`⊎`, `⊖`, scaling, flatten) never
//! clone a value tree. The value-level API (`iter`, `insert`,
//! `multiplicity`, …) is preserved by resolving ids on read; the `*_id`
//! methods expose the id-native fast path for hot call sites.
//!
//! # Representation tiers
//!
//! A bag carries one of two physical representations, selected by size:
//!
//! * **Small** — a strictly sorted `Vec<(Vid, i64)>` (columnar, one
//!   allocation, branch-predictable linear merges) for bags of at most
//!   [`Bag::SMALL_TIER_MAX`] distinct elements: the transient deltas and
//!   modest view states every hot engine path is made of;
//! * **Tree** — the shared `Arc<VidMap<i64>>` (copy-on-write `BTreeMap`)
//!   for large persistent state, where `O(log n)` point upserts beat
//!   rebuilding a long run.
//!
//! Both tiers maintain the same canonical form (strictly ascending keys, no
//! zero multiplicities), so `Eq`/`Ord`/`Hash` and iteration order are
//! bit-identical across tiers — a small bag and a tree bag with the same
//! contents are *equal* and indistinguishable through the public API. A
//! small bag that grows past the threshold promotes to the tree tier by
//! transferring its key retains (no arena traffic); bags never demote. The
//! retain/release liveness bookkeeping lives behind the tier-agnostic seam
//! in `livemap`: small-tier merges batch their arena retains into one pass
//! proportional to the key-set delta, never the bag size.

use crate::error::DataError;
use crate::intern::{self, Vid};
use crate::livemap::{SortedVidRun, VidMap};
use crate::value::Value;
use serde::{Deserialize, Json, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, LazyLock};

/// Count one Small→Tree promotion in `data.bag.tier_promotions`. Promotion
/// is rare by design (only bags crossing [`Bag::SMALL_TIER_MAX`]), so the
/// cached-handle lookup plus a relaxed `fetch_add` is negligible; when
/// instrumentation is globally off even that is skipped.
#[inline]
fn count_tier_promotion() {
    static PROMOTIONS: LazyLock<Arc<nrc_obs::Counter>> =
        LazyLock::new(|| nrc_obs::counter("data.bag.tier_promotions"));
    if nrc_obs::enabled() {
        PROMOTIONS.inc();
    }
}

/// The two physical representations of a bag (see the module docs): a
/// columnar sorted run for small/transient bags, a shared copy-on-write
/// tree for large persistent state. Canonical form is identical in both.
enum Repr {
    Small(SortedVidRun),
    Tree(Arc<VidMap<i64>>),
}

/// A generalized bag of [`Value`]s.
///
/// Internally a sorted collection of interned element ids with non-zero
/// multiplicities, in one of two tiers (see the module docs): a columnar
/// sorted run below [`Bag::SMALL_TIER_MAX`] distinct elements, a shared
/// copy-on-write tree above it. Both give canonical representation and
/// deterministic iteration (identical to the seed's value-keyed order —
/// `Ord` on [`Vid`] refines the canonical `Ord` on [`Value`]). Cloning a
/// tree-tier bag (e.g. binding relations into evaluation environments, or
/// snapshotting the database before an update) is an `O(1)` `Arc` bump;
/// cloning a small bag is one flat memcpy plus a dense retain pass.
///
/// The element keys participate in arena reclamation: both tiers retain
/// each key's arena slot while present and release it on removal/drop,
/// which is what lets `intern::collect` reclaim values no bag references
/// anymore. Small-tier merges batch that bookkeeping: arena traffic is
/// proportional to the key-set *delta* of an operation, not the bag size.
pub struct Bag {
    repr: Repr,
}

/// Iterator over a bag's `(id, multiplicity)` pairs in canonical order,
/// returned by [`Bag::ids`]. Items are `Copy`; both tiers yield the exact
/// same sequence for equal bags.
pub struct Ids<'a> {
    inner: IdsInner<'a>,
}

enum IdsInner<'a> {
    Small(std::slice::Iter<'a, (Vid, i64)>),
    Tree(std::collections::btree_map::Iter<'a, Vid, i64>),
}

impl Iterator for Ids<'_> {
    type Item = (Vid, i64);

    fn next(&mut self) -> Option<(Vid, i64)> {
        match &mut self.inner {
            IdsInner::Small(it) => it.next().copied(),
            IdsInner::Tree(it) => it.next().map(|(&id, &m)| (id, m)),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            IdsInner::Small(it) => it.size_hint(),
            IdsInner::Tree(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for Ids<'_> {}

/// Sort raw `(id, multiplicity)` pairs and coalesce them into canonical
/// form: duplicates summed (overflow panics, like [`Bag::insert_id`]),
/// zeros dropped, keys strictly ascending.
fn coalesce_pairs<I: IntoIterator<Item = (Vid, i64)>>(pairs: I) -> Vec<(Vid, i64)> {
    let mut pairs: Vec<(Vid, i64)> = pairs.into_iter().filter(|&(_, m)| m != 0).collect();
    pairs.sort_unstable_by_key(|&(id, _)| id);
    let mut out: Vec<(Vid, i64)> = Vec::with_capacity(pairs.len());
    for (id, m) in pairs {
        match out.last_mut() {
            Some((last, acc)) if *last == id => {
                *acc = acc.checked_add(m).expect("bag multiplicity overflow in ⊎");
            }
            _ => {
                if let Some(&(_, 0)) = out.last() {
                    out.pop();
                }
                out.push((id, m));
            }
        }
    }
    if let Some(&(_, 0)) = out.last() {
        out.pop();
    }
    out
}

/// Linear merge of two canonical runs into one (`a ⊎ b`): sums collisions
/// (overflow-checked), drops zeros, stays strictly sorted. Pure pair
/// arithmetic — no arena traffic; liveness is settled when the final run is
/// turned into a bag.
fn merge_runs(a: Vec<(Vid, i64)>, b: Vec<(Vid, i64)>) -> Result<Vec<(Vid, i64)>, DataError> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut a = a.into_iter().peekable();
    let mut b = b.into_iter().peekable();
    loop {
        let step = match (a.peek(), b.peek()) {
            (Some(&(ka, _)), Some(&(kb, _))) => ka.cmp(&kb),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => break,
        };
        match step {
            Ordering::Less => out.push(a.next().expect("peeked")),
            Ordering::Greater => out.push(b.next().expect("peeked")),
            Ordering::Equal => {
                let (id, ma) = a.next().expect("peeked");
                let (_, mb) = b.next().expect("peeked");
                let sum = ma.checked_add(mb).ok_or(DataError::Overflow { op: "⊎" })?;
                if sum != 0 {
                    out.push((id, sum));
                }
            }
        }
    }
    Ok(out)
}

impl Bag {
    /// Largest distinct-element count held in the columnar small tier.
    ///
    /// Below this a bag is one sorted `Vec<(Vid, i64)>` (≤ 8 KiB of pairs):
    /// merges are linear, branch-predictable walks and the arena retains of
    /// an operation batch into one pass over the key-set delta. Past it the
    /// bag promotes (once, by retain transfer — bags never demote) to the
    /// shared copy-on-write tree, where `O(log n)` point upserts beat
    /// rebuilding a long run and clones are `O(1)` `Arc` bumps.
    pub const SMALL_TIER_MAX: usize = 512;

    /// The empty bag `∅`.
    #[must_use]
    pub fn empty() -> Bag {
        Bag::default()
    }

    /// Is this bag currently held in the columnar small tier? Small and
    /// tree bags of equal contents are fully interchangeable (`Eq`/`Ord`/
    /// `Hash`/iteration agree); this observer exists for tier-invariant
    /// tests and capacity diagnostics.
    #[must_use]
    pub fn is_small_tier(&self) -> bool {
        matches!(self.repr, Repr::Small(_))
    }

    /// Build from a canonical run, retaining every key in one dense pass
    /// and choosing the tier by size — the single construction funnel of
    /// every bulk operation.
    fn from_canonical_pairs(pairs: Vec<(Vid, i64)>) -> Bag {
        if pairs.len() <= Bag::SMALL_TIER_MAX {
            Bag {
                repr: Repr::Small(SortedVidRun::from_unretained(pairs)),
            }
        } else {
            count_tier_promotion();
            for &(id, _) in &pairs {
                intern::retain(id);
            }
            Bag {
                repr: Repr::Tree(Arc::new(VidMap::from_retained_sorted(pairs))),
            }
        }
    }

    /// Promote a small run past the threshold into the tree tier by
    /// transferring its key retains — no arena traffic.
    fn maybe_promote(&mut self) {
        if let Repr::Small(run) = &mut self.repr {
            if run.len() > Bag::SMALL_TIER_MAX {
                count_tier_promotion();
                let pairs = std::mem::take(run).into_retained_pairs();
                self.repr = Repr::Tree(Arc::new(VidMap::from_retained_sorted(pairs)));
            }
        }
    }

    /// The singleton bag `{v}` (multiplicity 1).
    pub fn singleton(v: Value) -> Bag {
        Bag::singleton_id(intern::intern(v))
    }

    /// The singleton bag over an already-interned element.
    pub fn singleton_id(id: Vid) -> Bag {
        let mut b = Bag::empty();
        b.insert_id(id, 1);
        b
    }

    /// Build a bag from values, each with multiplicity 1 (duplicates sum).
    pub fn from_values<I: IntoIterator<Item = Value>>(values: I) -> Bag {
        Bag::from_pairs(values.into_iter().map(|v| (v, 1)))
    }

    /// Build a bag from `(value, multiplicity)` pairs (duplicates sum, zeros
    /// dropped).
    pub fn from_pairs<I: IntoIterator<Item = (Value, i64)>>(pairs: I) -> Bag {
        Bag::from_id_pairs(pairs.into_iter().map(|(v, m)| (intern::intern(v), m)))
    }

    /// Build a bag from `(id, multiplicity)` pairs (duplicates sum, zeros
    /// dropped) — the id-native sibling of [`Bag::from_pairs`]. One sort +
    /// coalesce pass, one batched retain pass.
    pub fn from_id_pairs<I: IntoIterator<Item = (Vid, i64)>>(pairs: I) -> Bag {
        Bag::from_canonical_pairs(coalesce_pairs(pairs))
    }

    /// Add `mult` copies of `v` (negative removes). Zero-multiplicity
    /// entries are dropped to preserve the canonical-form invariant.
    pub fn insert(&mut self, v: Value, mult: i64) {
        if mult == 0 {
            return;
        }
        self.insert_id(intern::intern(v), mult);
    }

    /// Id-native [`Bag::insert`]: add `mult` copies of an interned element.
    /// Multiplicity addition is overflow-checked — silent wrap-around would
    /// corrupt the group structure undetectably.
    pub fn insert_id(&mut self, id: Vid, mult: i64) {
        self.try_insert_id(id, mult)
            .expect("bag multiplicity overflow in ⊎");
    }

    /// [`Bag::insert_id`] that surfaces multiplicity-addition overflow as
    /// [`DataError::Overflow`] instead of panicking — the building block of
    /// the fallible accumulation paths ([`Bag::union_assign_scaled`],
    /// [`Bag::flatten`]).
    pub fn try_insert_id(&mut self, id: Vid, mult: i64) -> Result<(), DataError> {
        if mult == 0 {
            return Ok(());
        }
        match &mut self.repr {
            Repr::Small(run) => {
                run.insert(id, mult)?;
                self.maybe_promote();
                Ok(())
            }
            Repr::Tree(map) => Arc::make_mut(map).upsert_with(id, |current| match current {
                None => Ok(Some(mult)),
                Some(&m) => {
                    let new = m.checked_add(mult).ok_or(DataError::Overflow { op: "⊎" })?;
                    Ok((new != 0).then_some(new))
                }
            }),
        }
    }

    /// The multiplicity of `v` (0 when absent). Probing for a value that was
    /// never interned does not intern it.
    pub fn multiplicity(&self, v: &Value) -> i64 {
        intern::lookup(v).map_or(0, |id| self.multiplicity_id(id))
    }

    /// Id-native [`Bag::multiplicity`].
    pub fn multiplicity_id(&self, id: Vid) -> i64 {
        match &self.repr {
            Repr::Small(run) => run.get(id).unwrap_or(0),
            Repr::Tree(map) => map.get(&id).copied().unwrap_or(0),
        }
    }

    /// Is this the empty bag?
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Small(run) => run.is_empty(),
            Repr::Tree(map) => map.is_empty(),
        }
    }

    /// Number of *distinct* elements.
    pub fn distinct_count(&self) -> usize {
        match &self.repr {
            Repr::Small(run) => run.len(),
            Repr::Tree(map) => map.len(),
        }
    }

    /// Cardinality "including repetitions" (§2.2, Ex. 5): the sum of the
    /// absolute multiplicities. Deletions weigh as much as insertions — a
    /// delta of 5 deletions has cardinality 5.
    pub fn cardinality(&self) -> u64 {
        self.ids().map(|(_, m)| m.unsigned_abs()).sum()
    }

    /// Sum of signed multiplicities (the "net" size; can be negative for
    /// delta bags).
    pub fn net_cardinality(&self) -> i64 {
        self.ids().map(|(_, m)| m).sum()
    }

    /// Are all multiplicities non-negative (i.e. is this a *proper* bag
    /// rather than a signed delta)?
    pub fn is_proper(&self) -> bool {
        self.ids().all(|(_, m)| m >= 0)
    }

    /// Iterate over `(element, multiplicity)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, i64)> {
        self.ids().map(|(id, m)| (id.value(), m))
    }

    /// Iterate over `(id, multiplicity)` pairs in canonical order — the
    /// id-native sibling of [`Bag::iter`] (no resolution, `Copy` items).
    /// Both tiers yield the identical sequence for equal bags.
    pub fn ids(&self) -> Ids<'_> {
        Ids {
            inner: match &self.repr {
                Repr::Small(run) => IdsInner::Small(run.as_slice().iter()),
                Repr::Tree(map) => IdsInner::Tree(map.iter()),
            },
        }
    }

    /// The smallest element's id, if any (also the interner's rank seed for
    /// bags-as-values).
    pub(crate) fn first_id(&self) -> Option<Vid> {
        self.ids().next().map(|(id, _)| id)
    }

    /// Iterate over elements, repeated `multiplicity` times. Panics in debug
    /// builds if any multiplicity is negative; intended for proper bags.
    pub fn iter_expanded(&self) -> impl Iterator<Item = &Value> {
        self.ids().flat_map(|(id, m)| {
            debug_assert!(m >= 0, "iter_expanded over a signed delta bag");
            std::iter::repeat_n(id.value(), m.max(0) as usize)
        })
    }

    /// Bag addition `⊎`: sums multiplicities, dropping zeros.
    #[must_use = "`union` returns a new bag and leaves `self` unchanged"]
    pub fn union(&self, other: &Bag) -> Bag {
        // Merge the smaller into a clone of the larger (union of two
        // materialized bags costs time proportional to the smaller one, the
        // assumption made in the §2.2 cost analysis — for the small tier
        // "proportional" is the linear merge plus delta-sized retains).
        let (big, small) = if self.distinct_count() >= other.distinct_count() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = big.clone();
        out.union_assign(small);
        out
    }

    /// In-place bag addition `self ⊎= other`: a linear merge over sorted
    /// runs in the small tier, per-key upserts in the tree tier.
    pub fn union_assign(&mut self, other: &Bag) {
        self.union_assign_scaled(other, 1)
            .expect("bag multiplicity overflow in ⊎");
    }

    /// In-place scaled addition `self ⊎= k · other` without materializing
    /// the scaled intermediate — the inner step of `for`-loop accumulation
    /// (`acc ⊎= m · body`) and of flatten.
    pub fn union_assign_scaled(&mut self, other: &Bag, k: i64) -> Result<(), DataError> {
        if k == 0 || other.is_empty() {
            return Ok(());
        }
        if self.is_empty() && k == 1 {
            // `∅ ⊎ b = b`: tree clones are O(1) Arc bumps, small clones one
            // dense retain pass — either beats re-merging.
            *self = other.clone();
            return Ok(());
        }
        match &mut self.repr {
            Repr::Small(run) => {
                run.merge_scaled(other.ids(), k)?;
                self.maybe_promote();
                Ok(())
            }
            Repr::Tree(map) => {
                let map = Arc::make_mut(map);
                for (id, m) in other.ids() {
                    let scaled = m
                        .checked_mul(k)
                        .ok_or(DataError::Overflow { op: "scaled ⊎" })?;
                    tree_insert(map, id, scaled)?;
                }
                Ok(())
            }
        }
    }

    /// Extend-style `⊎`: add every `(value, multiplicity)` pair from an
    /// iterator, summing collisions and dropping zeros. The batch-oriented
    /// sibling of [`Bag::union_assign`], used when coalescing many deltas
    /// without materializing each as a separate bag first.
    pub fn extend_pairs<I: IntoIterator<Item = (Value, i64)>>(&mut self, pairs: I) {
        self.extend_id_pairs(pairs.into_iter().map(|(v, m)| (intern::intern(v), m)));
    }

    /// Id-native [`Bag::extend_pairs`]: the incoming pairs are sorted and
    /// coalesced once, then merged through the same linear path as
    /// [`Bag::union_assign`] — one batched retain pass, no per-pair tree
    /// walks.
    pub fn extend_id_pairs<I: IntoIterator<Item = (Vid, i64)>>(&mut self, pairs: I) {
        let run = coalesce_pairs(pairs);
        if run.is_empty() {
            return;
        }
        match &mut self.repr {
            Repr::Small(r) => {
                r.merge_scaled(run.into_iter(), 1)
                    .expect("bag multiplicity overflow in ⊎");
            }
            Repr::Tree(map) => {
                let map = Arc::make_mut(map);
                for (id, m) in run {
                    tree_insert(map, id, m).expect("bag multiplicity overflow in ⊎");
                }
            }
        }
        self.maybe_promote();
    }

    /// Coalesce many bags into one by `⊎` with a k-way merge.
    ///
    /// Each input contributes its canonical sorted run; the runs are merged
    /// in a pairwise tournament (every pair participates in `O(log k)`
    /// linear merges), collisions summed and zeros dropped along the way,
    /// and the winning run becomes the result bag with a single batched
    /// retain pass — `O(N log k)` pair moves for `N` total entries, with
    /// none of the per-bag tree rebalancing a fold of [`Bag::union`]s
    /// performs and no per-entry arena traffic. This is the primitive
    /// behind batched update coalescing (`δ(u₁ ⊎ u₂ ⊎ …)` preprocessing).
    ///
    /// ```
    /// use nrc_data::{Bag, Value};
    /// let a = Bag::from_pairs([(Value::int(1), 2)]);
    /// let b = Bag::from_pairs([(Value::int(1), -2), (Value::int(2), 1)]);
    /// let c = Bag::from_pairs([(Value::int(3), 4)]);
    /// let merged = Bag::union_many([&a, &b, &c]);
    /// assert_eq!(merged, a.union(&b).union(&c));
    /// ```
    #[must_use = "`union_many` returns the coalesced bag"]
    pub fn union_many<'a, I: IntoIterator<Item = &'a Bag>>(bags: I) -> Bag {
        let bags: Vec<&Bag> = bags.into_iter().filter(|b| !b.is_empty()).collect();
        match bags.len() {
            0 => return Bag::empty(),
            1 => return bags[0].clone(),
            _ => {}
        }
        // Seed the tournament with every bag's canonical run (tree tiers
        // materialize their pairs once), then merge pairs of runs until one
        // remains.
        let mut runs: Vec<Vec<(Vid, i64)>> = bags.iter().map(|b| b.ids().collect()).collect();
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut it = runs.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(merge_runs(a, b).expect("bag multiplicity overflow in ⊎")),
                    None => next.push(a),
                }
            }
            runs = next;
        }
        Bag::from_canonical_pairs(runs.pop().unwrap_or_default())
    }

    /// Bag negation `⊖`: negates every multiplicity.
    #[must_use = "`negate` returns a new bag and leaves `self` unchanged"]
    pub fn negate(&self) -> Bag {
        let pairs = self
            .ids()
            .map(|(id, m)| (id, m.checked_neg().expect("bag multiplicity overflow in ⊖")))
            .collect();
        Bag::from_canonical_pairs(pairs)
    }

    /// Group difference `self ⊎ ⊖(other)` — *not* the truncating bag minus
    /// (which is non-incrementalizable, Appendix A.2); multiplicities may go
    /// negative.
    #[must_use = "`difference` returns a new bag and leaves `self` unchanged"]
    pub fn difference(&self, other: &Bag) -> Bag {
        let mut out = self.clone();
        out.union_assign_scaled(other, -1)
            .expect("bag multiplicity overflow in ⊖");
        out
    }

    /// Multiply every multiplicity by `k` (`k = 0` yields `∅`), failing with
    /// [`DataError::Overflow`] instead of silently wrapping. One linear pass
    /// over the canonical run, one batched retain pass.
    pub fn scale(&self, k: i64) -> Result<Bag, DataError> {
        match k {
            0 => return Ok(Bag::empty()),
            1 => return Ok(self.clone()),
            _ => {}
        }
        let pairs = self
            .ids()
            .map(|(id, m)| {
                m.checked_mul(k)
                    .map(|scaled| (id, scaled))
                    .ok_or(DataError::Overflow { op: "scale" })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Bag::from_canonical_pairs(pairs))
    }

    /// Map every element through `f`, summing multiplicities of collisions.
    #[must_use = "`map` returns a new bag and leaves `self` unchanged"]
    pub fn map<F: FnMut(&Value) -> Value>(&self, mut f: F) -> Bag {
        Bag::from_pairs(self.iter().map(|(v, m)| (f(v), m)))
    }

    /// The delta taking `self` to `target`: `target ⊎ ⊖(self)`.
    ///
    /// This realizes the group property quoted in §3: such a delta always
    /// exists.
    #[must_use = "`delta_to` returns the delta bag without applying it"]
    pub fn delta_to(&self, target: &Bag) -> Bag {
        target.difference(self)
    }

    /// Cartesian product: `{⟨v, w⟩ ↦ m·n | v ↦ m ∈ self, w ↦ n ∈ other}`,
    /// failing with [`DataError::Overflow`] when a multiplicity product
    /// exceeds `i64`.
    pub fn product(&self, other: &Bag) -> Result<Bag, DataError> {
        let mut out = Bag::empty();
        for (v, m) in self.iter() {
            for (w, n) in other.iter() {
                let mult = m
                    .checked_mul(n)
                    .ok_or(DataError::Overflow { op: "product" })?;
                out.insert(Value::pair(v.clone(), w.clone()), mult);
            }
        }
        Ok(out)
    }

    /// Flatten a bag of bags: `⊎_{v ∈ self} v`, weighting each inner bag by
    /// the multiplicity of its occurrence (linear in the input, matching the
    /// `flatten` cost rule of Fig. 5). Id-native: inner elements flow into
    /// the result as interned ids, no value tree is rebuilt.
    pub fn flatten(&self) -> Result<Bag, crate::error::DataError> {
        let mut out = Bag::empty();
        for (id, m) in self.ids() {
            let inner = id.value().as_bag()?;
            out.union_assign_scaled(inner, m)
                .map_err(|_| DataError::Overflow { op: "flatten" })?;
        }
        Ok(out)
    }
}

/// The tree tier's overflow-checked point upsert (shared by the per-key and
/// the pre-coalesced bulk paths).
fn tree_insert(map: &mut VidMap<i64>, id: Vid, mult: i64) -> Result<(), DataError> {
    debug_assert!(mult != 0, "zero multiplicities never reach the upsert");
    map.upsert_with(id, |current| match current {
        None => Ok(Some(mult)),
        Some(&m) => {
            let new = m.checked_add(mult).ok_or(DataError::Overflow { op: "⊎" })?;
            Ok((new != 0).then_some(new))
        }
    })
}

impl Default for Bag {
    fn default() -> Bag {
        Bag {
            repr: Repr::Small(SortedVidRun::new()),
        }
    }
}

impl Clone for Bag {
    fn clone(&self) -> Bag {
        Bag {
            repr: match &self.repr {
                Repr::Small(run) => Repr::Small(run.clone()),
                Repr::Tree(map) => Repr::Tree(Arc::clone(map)),
            },
        }
    }
}

// Equality, ordering and hashing are defined over the canonical pair
// sequence, which both tiers produce identically — so a small bag and a
// tree bag of equal contents are fully interchangeable (including as
// interned `Value::Bag` keys and dictionary definitions). The definitions
// coincide with the previous derived ones over `BTreeMap<Vid, i64>`
// (lexicographic iterator comparison of `(key, value)` pairs; length-then-
// entries hashing).

impl PartialEq for Bag {
    fn eq(&self, other: &Bag) -> bool {
        if let (Repr::Tree(a), Repr::Tree(b)) = (&self.repr, &other.repr) {
            if Arc::ptr_eq(a, b) {
                return true;
            }
        }
        self.distinct_count() == other.distinct_count() && self.ids().eq(other.ids())
    }
}

impl Eq for Bag {}

impl PartialOrd for Bag {
    fn partial_cmp(&self, other: &Bag) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bag {
    fn cmp(&self, other: &Bag) -> Ordering {
        self.ids().cmp(other.ids())
    }
}

impl Hash for Bag {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.distinct_count().hash(state);
        for (id, m) in self.ids() {
            id.hash(state);
            m.hash(state);
        }
    }
}

impl Serialize for Bag {
    /// Tier-independent: both representations serialize as the sorted
    /// `[id, multiplicity]` pair array (the shape the former derived impl
    /// produced). Real persistence goes through [`crate::codec`], which is
    /// arena-independent; this JSON form serves diagnostics.
    fn to_json(&self) -> Json {
        Json::Object(vec![(
            "elems".to_string(),
            Json::Array(
                self.ids()
                    .map(|(id, m)| Json::Array(vec![id.to_json(), m.to_json()]))
                    .collect(),
            ),
        )])
    }
}

impl Deserialize for Bag {}

impl FromIterator<Value> for Bag {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Bag::from_values(iter)
    }
}

impl fmt::Debug for Bag {
    /// Debug renders resolved elements (not raw ids) so test failures stay
    /// readable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, m)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if m == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{v}^{m}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(items: &[(i64, i64)]) -> Bag {
        Bag::from_pairs(items.iter().map(|&(v, m)| (Value::int(v), m)))
    }

    #[test]
    fn empty_and_singleton() {
        assert!(Bag::empty().is_empty());
        let s = Bag::singleton(Value::int(7));
        assert_eq!(s.multiplicity(&Value::int(7)), 1);
        assert_eq!(s.cardinality(), 1);
    }

    #[test]
    fn insert_cancels_to_zero() {
        let mut bag = Bag::empty();
        bag.insert(Value::int(1), 3);
        bag.insert(Value::int(1), -3);
        assert!(bag.is_empty());
        assert_eq!(bag, Bag::empty()); // canonical form ⇒ structural equality
    }

    #[test]
    fn union_sums_multiplicities() {
        let x = b(&[(1, 2), (2, 1)]);
        let y = b(&[(1, -2), (3, 4)]);
        let u = x.union(&y);
        assert_eq!(u, b(&[(2, 1), (3, 4)]));
        // ⊎ is commutative.
        assert_eq!(u, y.union(&x));
    }

    #[test]
    fn group_laws_hold() {
        let x = b(&[(1, 2), (2, -5)]);
        let y = b(&[(2, 5), (9, 1)]);
        let z = b(&[(1, 1)]);
        // associativity, identity, inverse
        assert_eq!(x.union(&y).union(&z), x.union(&y.union(&z)));
        assert_eq!(x.union(&Bag::empty()), x);
        assert_eq!(x.union(&x.negate()), Bag::empty());
    }

    #[test]
    fn delta_to_recovers_target() {
        let old = b(&[(1, 3), (2, 1)]);
        let new = b(&[(1, 1), (5, 2)]);
        let delta = old.delta_to(&new);
        assert_eq!(old.union(&delta), new);
    }

    #[test]
    fn cardinality_counts_absolute_multiplicities() {
        let d = b(&[(1, 3), (2, -2)]);
        assert_eq!(d.cardinality(), 5);
        assert_eq!(d.net_cardinality(), 1);
        assert!(!d.is_proper());
        assert!(b(&[(1, 1)]).is_proper());
    }

    #[test]
    fn product_multiplies_multiplicities() {
        let x = b(&[(1, 2)]);
        let y = b(&[(10, 3)]);
        let p = x.product(&y).unwrap();
        assert_eq!(
            p.multiplicity(&Value::pair(Value::int(1), Value::int(10))),
            6
        );
        assert_eq!(p.distinct_count(), 1);
    }

    #[test]
    fn product_distributes_over_union() {
        let x = b(&[(1, 2), (2, 1)]);
        let y = b(&[(3, 1)]);
        let z = b(&[(3, 2), (4, -1)]);
        assert_eq!(
            x.product(&y.union(&z)).unwrap(),
            x.product(&y).unwrap().union(&x.product(&z).unwrap())
        );
    }

    #[test]
    fn flatten_unions_inner_bags_weighted() {
        let inner1 = b(&[(1, 1), (2, 1)]);
        let inner2 = b(&[(2, 3)]);
        let mut outer = Bag::empty();
        outer.insert(Value::Bag(inner1), 2); // two copies of {1,2}
        outer.insert(Value::Bag(inner2), 1);
        let flat = outer.flatten().unwrap();
        assert_eq!(flat, b(&[(1, 2), (2, 5)]));
    }

    #[test]
    fn flatten_of_non_bag_errors() {
        let outer = Bag::from_values([Value::int(3)]);
        assert!(outer.flatten().is_err());
    }

    #[test]
    fn scale_and_negate() {
        let x = b(&[(1, 2), (2, -1)]);
        assert_eq!(x.scale(3).unwrap(), b(&[(1, 6), (2, -3)]));
        assert_eq!(x.scale(0).unwrap(), Bag::empty());
        assert_eq!(x.negate().negate(), x);
    }

    #[test]
    fn scale_and_product_detect_overflow() {
        let x = b(&[(1, i64::MAX / 2 + 1)]);
        assert_eq!(x.scale(2), Err(DataError::Overflow { op: "scale" }));
        let y = b(&[(2, 2)]);
        assert_eq!(x.product(&y), Err(DataError::Overflow { op: "product" }));
        let mut outer = Bag::empty();
        outer.insert(Value::Bag(x), 2);
        assert_eq!(outer.flatten(), Err(DataError::Overflow { op: "flatten" }));
        let mut acc = Bag::empty();
        assert!(acc.union_assign_scaled(&b(&[(1, i64::MAX)]), 2).is_err());
        // Accumulator-side addition overflow surfaces as an error too (not
        // a panic): MAX + 1.
        let mut acc = b(&[(1, i64::MAX)]);
        assert_eq!(
            acc.union_assign_scaled(&b(&[(1, 1)]), 1),
            Err(DataError::Overflow { op: "⊎" })
        );
        assert_eq!(
            acc.try_insert_id(crate::intern::intern(Value::int(1)), 1),
            Err(DataError::Overflow { op: "⊎" })
        );
    }

    #[test]
    fn iter_expanded_repeats() {
        let x = b(&[(4, 2), (7, 1)]);
        let vs: Vec<i64> = x
            .iter_expanded()
            .map(|v| match v {
                Value::Base(crate::base::BaseValue::Int(i)) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vs, vec![4, 4, 7]);
    }

    #[test]
    fn map_merges_collisions() {
        let x = b(&[(1, 2), (-1, 3)]);
        let squared = x.map(|v| match v {
            Value::Base(crate::base::BaseValue::Int(i)) => Value::int(i * i),
            _ => unreachable!(),
        });
        assert_eq!(squared, b(&[(1, 5)]));
    }

    #[test]
    fn union_many_matches_folded_union() {
        let bags = [
            b(&[(1, 2), (2, -1)]),
            b(&[(1, -2), (3, 4)]),
            b(&[(2, 1), (3, -4), (5, 1)]),
            Bag::empty(),
        ];
        let folded = bags.iter().fold(Bag::empty(), |acc, x| acc.union(x));
        assert_eq!(Bag::union_many(bags.iter()), folded);
        assert_eq!(Bag::union_many([]), Bag::empty());
        assert_eq!(Bag::union_many([&bags[0]]), bags[0]);
    }

    #[test]
    fn union_many_cancels_to_canonical_form() {
        let x = b(&[(1, 3), (2, 1)]);
        let nx = x.negate();
        let merged = Bag::union_many([&x, &nx]);
        assert!(merged.is_empty());
        assert_eq!(merged, Bag::empty());
    }

    #[test]
    fn union_many_tournament_matches_fold_for_many_runs() {
        // Seven bags of staggered overlap: the pairwise tournament must
        // agree with a left fold of binary unions, including interior
        // cancellations.
        let bags: Vec<Bag> = (0..7i64)
            .map(|i| {
                b(&[
                    (i, i + 1),
                    (i + 1, -(i + 1)),
                    (100 + (i % 3), 2),
                    (50, if i % 2 == 0 { 1 } else { -1 }),
                ])
            })
            .collect();
        let folded = bags.iter().fold(Bag::empty(), |acc, x| acc.union(x));
        assert_eq!(Bag::union_many(bags.iter()), folded);
    }

    #[test]
    fn extend_pairs_sums_collisions() {
        let mut bag = b(&[(1, 1)]);
        bag.extend_pairs([(Value::int(1), 2), (Value::int(2), 1), (Value::int(2), -1)]);
        assert_eq!(bag, b(&[(1, 3)]));
    }

    #[test]
    fn id_native_api_matches_value_api() {
        let mut by_value = Bag::empty();
        let mut by_id = Bag::empty();
        for (v, m) in [
            (Value::int(3), 2),
            (Value::str("x"), -1),
            (Value::int(3), 1),
        ] {
            by_value.insert(v.clone(), m);
            by_id.insert_id(crate::intern::intern(v), m);
        }
        assert_eq!(by_value, by_id);
        assert_eq!(
            by_value.multiplicity_id(crate::intern::intern(Value::int(3))),
            3
        );
        let ids: Vec<_> = by_value.ids().collect();
        let values: Vec<_> = by_value.iter().collect();
        assert_eq!(ids.len(), values.len());
        for ((id, im), (v, vm)) in ids.iter().zip(&values) {
            assert_eq!(id.value(), *v);
            assert_eq!(im, vm);
        }
        assert_eq!(Bag::from_id_pairs(ids), by_value);
    }

    #[test]
    fn union_assign_scaled_matches_scale_then_union() {
        let mut acc = b(&[(1, 1), (2, 2)]);
        let rhs = b(&[(1, 2), (3, -1)]);
        let mut expected = acc.clone();
        expected.union_assign(&rhs.scale(-3).unwrap());
        acc.union_assign_scaled(&rhs, -3).unwrap();
        assert_eq!(acc, expected);
    }

    #[test]
    fn display_shows_multiplicities() {
        let x = b(&[(1, 1), (2, 3)]);
        assert_eq!(x.to_string(), "{1, 2^3}");
    }

    #[test]
    fn bags_nest_and_order() {
        let inner_a = Value::Bag(b(&[(1, 1)]));
        let inner_b = Value::Bag(b(&[(2, 1)]));
        let outer = Bag::from_values([inner_a.clone(), inner_b.clone()]);
        assert_eq!(outer.multiplicity(&inner_a), 1);
        assert!(inner_a < inner_b);
    }

    #[test]
    fn growth_promotes_small_to_tree_and_back_never() {
        let n = Bag::SMALL_TIER_MAX as i64 + 10;
        let mut bag = Bag::empty();
        assert!(bag.is_small_tier());
        for i in 0..n {
            bag.insert(Value::int(i), 1);
        }
        assert!(!bag.is_small_tier(), "growth past the threshold promotes");
        assert_eq!(bag.distinct_count(), n as usize);
        // Shrinking below the threshold does not demote (hysteresis).
        for i in 0..n - 1 {
            bag.insert(Value::int(i), -1);
        }
        assert!(!bag.is_small_tier());
        assert_eq!(bag.distinct_count(), 1);
        assert_eq!(bag.multiplicity(&Value::int(n - 1)), 1);
    }

    #[test]
    fn tiers_are_interchangeable_in_eq_ord_hash_and_iteration() {
        use std::collections::hash_map::DefaultHasher;
        let n = Bag::SMALL_TIER_MAX as i64 + 50;
        // `big` grows through promotion; `shrunk` is the same content
        // reached by cancelling `big` down — a tree-tier bag whose size is
        // small-tier territory.
        let mut big = Bag::empty();
        for i in 0..n {
            big.insert(Value::int(i), 2);
        }
        let mut shrunk = big.clone();
        for i in 3..n {
            shrunk.insert(Value::int(i), -2);
        }
        let small = b(&[(0, 2), (1, 2), (2, 2)]);
        assert!(small.is_small_tier());
        assert!(!shrunk.is_small_tier());
        assert_eq!(small, shrunk);
        assert_eq!(small.cmp(&shrunk), std::cmp::Ordering::Equal);
        let hash_of = |bag: &Bag| {
            let mut h = DefaultHasher::new();
            bag.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash_of(&small), hash_of(&shrunk));
        assert!(small.ids().eq(shrunk.ids()));
        assert_eq!(
            small.ids().collect::<Vec<_>>(),
            shrunk.ids().collect::<Vec<_>>()
        );
        // Mixed-tier algebra: union of a tree bag and a small bag.
        let mut mixed = shrunk.union(&small);
        assert_eq!(mixed, small.scale(2).unwrap());
        mixed.union_assign_scaled(&small, -2).unwrap();
        assert!(mixed.is_empty());
        // Ord is the canonical pair order regardless of tier.
        let smaller = b(&[(0, 1)]);
        assert!(smaller < small);
        assert_eq!(small.partial_cmp(&shrunk), Some(std::cmp::Ordering::Equal));
    }

    #[test]
    fn bulk_constructors_pick_the_tier_by_size() {
        let small = Bag::from_pairs((0..10i64).map(|i| (Value::int(i), 1)));
        assert!(small.is_small_tier());
        let big = Bag::from_pairs((0..Bag::SMALL_TIER_MAX as i64 + 1).map(|i| (Value::int(i), 1)));
        assert!(!big.is_small_tier());
        // Derived results follow their own size, not the source tier.
        assert!(big.scale(3).unwrap().distinct_count() > Bag::SMALL_TIER_MAX);
        assert!(!big.negate().is_small_tier());
        let merged = Bag::union_many([&big, &big.negate()]);
        assert!(merged.is_empty());
        assert!(
            merged.is_small_tier(),
            "empty results live in the small tier"
        );
    }
}
