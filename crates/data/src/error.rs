//! Error types for the data layer.

use crate::dict::Label;
use std::fmt;

/// Errors raised by data-layer operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataError {
    /// Label union `∪` of two dictionaries found a label defined on both
    /// sides with *different* definitions (§5.2: `(d₁ ∪ d₂)(l) = error` when
    /// `l ∈ supp(d₁) ∩ supp(d₂)` and `d₁(l) ≠ d₂(l)`).
    DictUnionConflict {
        /// The conflicting label.
        label: Label,
    },
    /// A label was looked up in a dictionary that does not define it —
    /// a consistency violation in the sense of Appendix C.3.
    UndefinedLabel {
        /// The undefined label.
        label: Label,
    },
    /// A value did not have the shape an operation required (e.g. projecting
    /// a component from a non-tuple).
    Shape {
        /// Human-readable description of the mismatch.
        expected: String,
        /// Display rendering of the offending value.
        got: String,
    },
    /// Multiplicity arithmetic overflowed `i64` (scaling, products or
    /// flatten weighting) — surfaced instead of silently wrapping, which
    /// would corrupt the bag group structure undetectably.
    Overflow {
        /// The operation whose multiplicity arithmetic overflowed.
        op: &'static str,
    },
    /// An interned-value id ([`crate::Vid`]) was resolved after its arena
    /// slot had been reclaimed by `intern::collect` — the id outlived every
    /// bag/dictionary reference and epoch pin that kept its slot live. The
    /// generation tag turns such use into this deterministic error instead
    /// of a silently wrong value.
    StaleVid {
        /// The arena index of the reclaimed slot.
        index: u32,
        /// The generation the id was created at (no longer current).
        generation: u32,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DictUnionConflict { label } => {
                write!(
                    f,
                    "label union conflict: label {label} has differing definitions"
                )
            }
            DataError::UndefinedLabel { label } => {
                write!(f, "undefined label {label}")
            }
            DataError::Shape { expected, got } => {
                write!(f, "value shape mismatch: expected {expected}, got {got}")
            }
            DataError::Overflow { op } => {
                write!(f, "multiplicity overflow in bag {op}")
            }
            DataError::StaleVid { index, generation } => {
                write!(
                    f,
                    "stale interned-value id: arena slot {index} (generation \
                     {generation}) was reclaimed by intern::collect"
                )
            }
        }
    }
}

impl std::error::Error for DataError {}
