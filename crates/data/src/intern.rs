//! Hash-consed value interning with epoch-based arena reclamation.
//!
//! Every hot path of the reproduction — delta application, shredded
//! dictionary lookups, recursive auxiliary refresh — manipulates nested
//! [`Value`] trees through [`crate::Bag`]s. Storing the trees themselves as
//! map keys makes each comparison a deep `Ord` traversal and each copy a
//! deep clone. This module applies the standard systems remedy, *hash
//! consing*: a global arena assigns every distinct `Value` a small
//! identifier [`Vid`], and all bag/dictionary internals key on `Vid`
//! instead of `Value`.
//!
//! The arena caches three things per interned value:
//!
//! * **hash** — a structural hash (nested interned children hash by id), so
//!   `Hash` for `Vid` is `O(1)`;
//! * **rank** — an *order-homomorphic* 64-bit prefix of the value's position
//!   in the canonical [`Ord`] on `Value`: `rank(a) < rank(b)` implies
//!   `a < b`. Comparisons resolve with one integer compare in the common
//!   case and fall back to a deep compare only on rank ties (where interned
//!   sub-structure still short-circuits equal subtrees in `O(1)`);
//! * **depth** — the constructor nesting depth, handy for diagnostics and
//!   cost accounting.
//!
//! Equality of `Vid`s is an integer compare: hash consing guarantees equal
//! values intern to equal ids. Iteration order of id-keyed maps equals the
//! seed's value-keyed order because `Ord for Vid` refines the exact same
//! total order (see `vid_order_matches_value_order` below).
//!
//! # Reclamation
//!
//! The PR-2 arena was append-only and leaked by design, which is fatal for
//! unbounded streams of ever-fresh values. The arena is now *collectible*:
//!
//! * Every slot carries a **live count** (`rc`): the number of references
//!   held by id-keyed [`crate::Bag`]/[`crate::Dictionary`] maps (including
//!   maps nested inside other interned values). Map inserts retain, map
//!   drops/removals release — see `crate::livemap::VidMap`.
//! * When a count hits zero the slot is recorded on a **dying list**
//!   together with the current **epoch**. Slots that were *never* retained
//!   (transient ids that never entered a map) are immortal — they are never
//!   enqueued, so a collector can never snatch an id out of a caller's
//!   hands before it reaches a map.
//! * [`collect`] sweeps the dying list: slots still dead, and dead since
//!   before every pinned epoch, are unhashed, their boxed `Value` dropped
//!   (recursively releasing nested children), and their index pushed onto a
//!   **free list** that [`intern`] reuses before growing the arena.
//! * [`collect_bounded`] is the *incremental* form: it frees at most
//!   `max_slots` slots per call, resuming from a **persistent sweep
//!   cursor** (the head of a process-global sweep queue) on the next call.
//!   Latency-sensitive callers amortize reclamation into many small pauses
//!   instead of one stop-the-world sweep; repeated bounded calls converge
//!   to exactly the state a full sweep reaches (`CollectStats::pending`
//!   reports the backlog still to visit).
//! * Reused slots are **generation-tagged**: `Vid` stays `Copy` by carrying
//!   `(index, generation)`, and every resolve checks the slot's current
//!   generation. Using a `Vid` whose slot was reclaimed is a deterministic
//!   error (panic, or `Err` via [`Vid::try_value`]) — never a wrong value.
//!
//! ## Safety protocol
//!
//! The collector frees a slot only when (a) its live count is zero, (b) it
//! died before the sweep's horizon epoch, and (c) no [`pin`] guard from an
//! earlier epoch is outstanding. Three rules make this sound:
//!
//! 1. ids obtained from a live map are protected by that map's live count;
//! 2. transient ids (interned but not yet inserted anywhere) are protected
//!    because zero-count slots are only collectible after a retain/release
//!    cycle, and a lookup hit on a dying slot *resurrects* it under the
//!    same shard lock the collector must take to free it;
//! 3. evaluation paths that resolve ids across many intermediate maps hold
//!    an [`pin`] guard, so a concurrent collector's horizon can never pass
//!    the evaluation's start epoch.
//!
//! A caller that violates the protocol (resolving an id after its last
//! reference was dropped *and* a collect ran) hits the generation check and
//! panics deterministically. The intended cadence — the engine collects
//! between batches via `CollectPolicy` — never races an evaluation.

use crate::base::BaseValue;
use crate::dict::Label;
use crate::error::DataError;
use crate::value::Value;
use serde::{Deserialize, Json, Serialize};
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem::MaybeUninit;
use std::sync::atomic::{
    AtomicBool, AtomicI32, AtomicPtr, AtomicU32, AtomicU64, Ordering as AtomicOrdering,
};
use std::sync::{LazyLock, Mutex, RwLock};

/// An interned value id: a handle into the global hash-consing arena.
///
/// `Vid` is `Copy`, compares for equality in `O(1)`, hashes in `O(1)` via
/// the cached structural hash, and orders consistently with the canonical
/// [`Ord`] on [`Value`] (rank prefix first, deep compare only on ties).
///
/// A `Vid` carries the **generation** of the slot it was created from; if
/// the slot has since been reclaimed by [`collect`] (and possibly reused
/// for a different value), every access through this id fails
/// deterministically instead of resolving to the wrong value.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Vid {
    idx: u32,
    gen: u32,
}

impl Vid {
    /// The interned value this id stands for.
    ///
    /// The reference is valid for as long as the slot stays live — i.e.
    /// while any bag/dictionary retains the id, while the caller holds an
    /// epoch [`pin`] taken before the last release, or until the next
    /// [`collect`]. Panics if the slot was already reclaimed.
    #[inline]
    pub fn value(self) -> &'static Value {
        match self.try_value() {
            Ok(v) => v,
            Err(_) => stale_vid_panic(self.idx, self.gen),
        }
    }

    /// Fallible [`Vid::value`]: `Err(DataError::StaleVid)` when the slot
    /// was reclaimed (generation mismatch) instead of panicking.
    #[inline]
    pub fn try_value(self) -> Result<&'static Value, DataError> {
        let s = slot(self.idx);
        let ptr = s.value.load(AtomicOrdering::Acquire);
        if s.gen.load(AtomicOrdering::Acquire) != self.gen || ptr.is_null() {
            return Err(DataError::StaleVid {
                index: self.idx,
                generation: self.gen,
            });
        }
        // SAFETY: the slot was occupied at generation `self.gen` when the
        // pointer was published (Release in `install`), and the matching
        // generation we just observed means no sweep has retired it. The
        // reclamation protocol (live counts / resurrection under the shard
        // lock / epoch pins, see module docs) guarantees no sweep retires
        // it while the caller still legitimately holds this id.
        Ok(unsafe { &*ptr })
    }

    /// The cached structural hash.
    #[inline]
    pub fn cached_hash(self) -> u64 {
        self.checked().hash.load(AtomicOrdering::Relaxed)
    }

    /// The cached order-homomorphic rank prefix.
    #[inline]
    pub fn rank(self) -> u64 {
        self.checked().rank.load(AtomicOrdering::Relaxed)
    }

    /// The cached constructor nesting depth (base values and labels with
    /// flat arguments have depth 0).
    #[inline]
    pub fn depth(self) -> u32 {
        self.checked().depth.load(AtomicOrdering::Relaxed)
    }

    /// The raw arena index (diagnostics only — not stable across processes,
    /// and reusable across generations once the slot is collected).
    #[inline]
    pub fn index(self) -> u32 {
        self.idx
    }

    /// The slot generation this id was created at (diagnostics).
    #[inline]
    pub fn generation(self) -> u32 {
        self.gen
    }

    /// The slot, after the deterministic staleness check.
    #[inline]
    fn checked(self) -> &'static Slot {
        let s = slot(self.idx);
        if s.gen.load(AtomicOrdering::Acquire) != self.gen {
            stale_vid_panic(self.idx, self.gen);
        }
        s
    }

    /// Resolve to a label, panicking when the interned value is not one.
    /// Dictionary supports rely on this: their keys are always labels.
    #[inline]
    pub(crate) fn as_label(self) -> &'static Label {
        match self.value() {
            Value::Label(l) => l,
            other => unreachable!("interned dictionary key is not a label: {other}"),
        }
    }
}

#[cold]
#[inline(never)]
fn stale_vid_panic(idx: u32, gen: u32) -> ! {
    panic!(
        "stale Vid({idx}@g{gen}): the arena slot was reclaimed by intern::collect \
         (current generation {}); the id outlived every bag/dictionary reference \
         and epoch pin that kept it live",
        slot(idx).gen.load(AtomicOrdering::Acquire)
    );
}

impl PartialOrd for Vid {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Vid {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        if self.idx == other.idx && self.gen == other.gen {
            return Ordering::Equal;
        }
        // Generation-checked on both sides (measured free next to the rank
        // loads): comparing a stale id must fail deterministically, never
        // order by a reused slot's rank.
        let (a, b) = (self.checked(), other.checked());
        match a
            .rank
            .load(AtomicOrdering::Relaxed)
            .cmp(&b.rank.load(AtomicOrdering::Relaxed))
        {
            // Distinct values with equal rank prefixes: fall back to the
            // deep canonical order. Shared interned subtrees still compare
            // in O(1) through nested `Vid` equality.
            Ordering::Equal => self.value().cmp(other.value()),
            unequal => unequal,
        }
    }
}

impl Hash for Vid {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.cached_hash());
    }
}

impl fmt::Debug for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vid({}@g{} ↦ {})", self.idx, self.gen, self.value())
    }
}

impl fmt::Display for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value())
    }
}

impl Serialize for Vid {
    /// Ids are process-local; on the wire a `Vid` is its resolved value, so
    /// the serialized form of id-keyed bags matches the seed representation.
    fn to_json(&self) -> Json {
        self.value().to_json()
    }
}

impl Deserialize for Vid {}

/// Scan one hash bucket for an already-interned equal value.
fn find_interned(map: &HashMap<u64, Vec<u32>>, hash: u64, value: &Value) -> Option<u32> {
    map.get(&hash)?
        .iter()
        .copied()
        .find(|&id| slot(id).value_ref() == value)
}

/// Build the `Vid` for an index found in a shard map. Must be called while
/// the shard lock (read or write) is held: occupied slots can only be
/// retired under the shard *write* lock, so the generation is stable here.
#[inline]
fn vid_at(idx: u32) -> Vid {
    let s = slot(idx);
    // A lookup hit on a dying slot resurrects it: clearing `enqueued` makes
    // the pending dying-list entry a no-op, so the returned id stays valid
    // at least until its next retain/release cycle. This runs under the
    // same shard lock the collector needs (exclusively) to free the slot.
    if s.enqueued.load(AtomicOrdering::Acquire) {
        s.enqueued.store(false, AtomicOrdering::Release);
    }
    Vid {
        idx,
        gen: s.gen.load(AtomicOrdering::Acquire),
    }
}

/// Intern a value, returning its id (allocating on first sight, reusing a
/// collected slot when the free list has one).
pub fn intern(value: Value) -> Vid {
    let hash = hash_value(&value);
    let interner = &*INTERNER;
    let shard = &interner.shards[shard_of(hash)];
    // Hits (the steady-state case) take only the shared read lock.
    {
        let map = shard.read().expect("intern shard");
        if let Some(id) = find_interned(&map, hash, &value) {
            return vid_at(id);
        }
    }
    let rank = rank_of(&value);
    let depth = depth_of(&value);
    let bytes = approx_bytes(&value);
    let mut map = shard.write().expect("intern shard");
    // Another thread may have interned the same value between the locks.
    if let Some(id) = find_interned(&map, hash, &value) {
        return vid_at(id);
    }
    let leaked: *mut Value = Box::into_raw(Box::new(value));
    let meta = SlotInit {
        value: leaked,
        hash,
        rank,
        depth,
        bytes,
    };
    // Prefer a reclaimed slot; grow the arena only when the free list is
    // empty. Both paths finish by publishing the (new) generation.
    let reused = interner.free.lock().expect("intern free list").pop();
    let vid = match reused {
        Some(idx) => {
            debug_assert_eq!(rc_of(idx).load(AtomicOrdering::Acquire), 0);
            let gen = slot(idx).install(meta);
            interner.stats.reused.fetch_add(1, AtomicOrdering::Relaxed);
            Vid { idx, gen }
        }
        None => {
            let _append = interner.append.lock().expect("intern append");
            let idx = interner.arena.push(meta);
            Vid { idx, gen: 0 }
        }
    };
    interner.stats.live.fetch_add(1, AtomicOrdering::Relaxed);
    interner
        .stats
        .bytes
        .fetch_add(bytes, AtomicOrdering::Relaxed);
    map.entry(hash).or_default().push(vid.idx);
    vid
}

/// Look a value up without interning it: `None` when it was never interned.
/// Pure reads (e.g. [`crate::Bag::multiplicity`]) use this so probing for
/// absent values does not grow the arena; concurrent readers share the
/// shard lock.
pub fn lookup(value: &Value) -> Option<Vid> {
    let hash = hash_value(value);
    let map = INTERNER.shards[shard_of(hash)]
        .read()
        .expect("intern shard");
    find_interned(&map, hash, value).map(vid_at)
}

/// Look up a label's id without constructing (or interning) a `Value`
/// wrapper — the dictionary-support fast path (shared read lock only).
pub fn lookup_label(label: &Label) -> Option<Vid> {
    let mut h = DefaultHasher::new();
    h.write_u8(TAG_LABEL);
    hash_label(label, &mut h);
    let hash = h.finish();
    let map = INTERNER.shards[shard_of(hash)]
        .read()
        .expect("intern shard");
    let ids = map.get(&hash)?;
    ids.iter()
        .copied()
        .find(|&id| matches!(slot(id).value_ref(), Value::Label(l) if l == label))
        .map(vid_at)
}

/// Intern a label as a dictionary-support key.
pub fn intern_label(label: Label) -> Vid {
    intern(Value::Label(label))
}

/// Number of arena slots ever allocated (monotone high-water mark;
/// diagnostics). Reused slots do not advance this — see
/// [`arena_stats`] for the live/dead/reused breakdown.
pub fn interned_count() -> u64 {
    INTERNER.arena.len.load(AtomicOrdering::Acquire) as u64
}

// ---------------------------------------------------------------------------
// Liveness: per-slot live counts maintained by the id-keyed maps.
// ---------------------------------------------------------------------------

/// Record one more map reference to `vid`. Called by `VidMap` on key
/// insertion and map clone.
///
/// Live counts live in a *dense* side array (16 per cache line) rather
/// than inside the 64-byte slots: map clones and drops sweep every key,
/// and that sweep is the hottest reclamation cost by far.
pub(crate) fn retain(vid: Vid) {
    debug_assert_eq!(
        slot(vid.idx).gen.load(AtomicOrdering::Acquire),
        vid.gen,
        "retain of a stale Vid"
    );
    let prev = rc_of(vid.idx).fetch_add(1, AtomicOrdering::AcqRel);
    debug_assert!(prev >= 0, "intern live count underflowed before retain");
}

/// Drop one map reference to `vid`. On the last release the slot joins the
/// dying list, stamped with the current epoch; [`collect`] may reclaim it
/// once every pin from before that epoch is gone. Called by `VidMap` on key
/// removal and map drop (including drops of values nested inside the arena
/// itself, which is what cascades collection through value trees).
pub(crate) fn release(vid: Vid) {
    let prev = rc_of(vid.idx).fetch_sub(1, AtomicOrdering::AcqRel);
    debug_assert!(prev > 0, "intern live count underflowed");
    if prev == 1 {
        let s = slot(vid.idx);
        debug_assert_eq!(
            s.gen.load(AtomicOrdering::Acquire),
            vid.gen,
            "release of a stale Vid"
        );
        s.dead_since
            .store(EPOCH.load(AtomicOrdering::Acquire), AtomicOrdering::Release);
        if !s.enqueued.swap(true, AtomicOrdering::AcqRel) {
            // Poisoning is survivable here: release runs from Drop impls
            // during unwinds and must not double-panic.
            let mut dying = match INTERNER.dying.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            dying.push(vid.idx);
        }
    }
}

// ---------------------------------------------------------------------------
// Epochs, pins and collection.
// ---------------------------------------------------------------------------

/// A point in the global reclamation clock. Epochs only move forward
/// ([`advance_epoch`]); [`collect`] reclaims slots that died strictly
/// before its horizon epoch (further limited by outstanding pins).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u64);

/// The reclamation clock. Starts at 1 so epoch 0 can never equal a death
/// stamp taken before any advance.
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// The current epoch.
pub fn current_epoch() -> Epoch {
    Epoch(EPOCH.load(AtomicOrdering::Acquire))
}

/// Advance the reclamation clock, returning the new epoch. Typically called
/// right before [`collect`] (or via [`collect_now`]) so everything that
/// died under the previous epoch becomes eligible.
pub fn advance_epoch() -> Epoch {
    Epoch(EPOCH.fetch_add(1, AtomicOrdering::AcqRel) + 1)
}

/// An epoch pin: while alive, no [`collect`] horizon can pass the epoch at
/// which it was taken, so any slot that dies *at or after* that epoch stays
/// resolvable for the pin's lifetime. (A slot that was already dying when
/// the pin was taken is not shielded — protect such ids by re-interning or
/// holding a map reference, which retains them.) Evaluation paths hold one
/// around their whole run so ids created and released mid-evaluation can
/// never be swept from under them.
#[must_use = "an epoch pin only protects ids while it is held"]
pub struct EpochPin {
    epoch: u64,
}

/// Pin the current epoch (see [`EpochPin`]).
pub fn pin() -> EpochPin {
    let mut pins = INTERNER.pins.lock().expect("epoch pins");
    let epoch = EPOCH.load(AtomicOrdering::Acquire);
    *pins.entry(epoch).or_insert(0) += 1;
    EpochPin { epoch }
}

impl EpochPin {
    /// The epoch this pin was taken at: no collection horizon can pass it
    /// while the pin is held.
    #[must_use]
    pub fn epoch(&self) -> Epoch {
        Epoch(self.epoch)
    }
}

/// The oldest outstanding pinned epoch — the *pin horizon*: no collection
/// can reclaim a slot that died at or after it. `None` when no pin is held
/// (sweeps are then limited only by their own horizon epoch).
///
/// Serving layers that hand out long-lived snapshots (each holding an
/// [`EpochPin`]) surface this figure in their stats: the horizon equals the
/// oldest outstanding snapshot's epoch, and dropping that snapshot advances
/// it — the observable guarantee that bounded GC never frees a slot a live
/// snapshot can still resolve.
#[must_use]
pub fn pin_horizon() -> Option<Epoch> {
    min_pinned().map(Epoch)
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        let mut pins = match INTERNER.pins.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(n) = pins.get_mut(&self.epoch) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&self.epoch);
            }
        }
    }
}

fn min_pinned() -> Option<u64> {
    INTERNER
        .pins
        .lock()
        .expect("epoch pins")
        .keys()
        .next()
        .copied()
}

/// Outcome of one [`collect`] / [`collect_bounded`] sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollectStats {
    /// Slots reclaimed (unhashed, value dropped, index freed for reuse).
    pub freed: u64,
    /// Dying-list entries skipped because the slot was referenced again
    /// (retained or re-interned) before the sweep reached it.
    pub resurrected: u64,
    /// Entries still dead but too young for the horizon (or shielded by a
    /// pin); they stay on the sweep queue for a later sweep.
    pub deferred: u64,
    /// Dying-list entries still queued when the call returned — nonzero
    /// when a bounded sweep ran out of budget (or everything examined was
    /// deferred), zero after an unbounded sweep of quiescent garbage.
    pub pending: u64,
}

/// Sweep the dying list, reclaiming every slot that (a) still has a zero
/// live count, and (b) died strictly before `horizon` *and* before every
/// outstanding [`pin`]. Freed indices go to the free list [`intern`] reuses;
/// freed values drop recursively, releasing nested children (a cascade the
/// next sweep picks up).
///
/// Thread-safe: concurrent interning/lookups proceed per shard, a lookup
/// hit resurrects a dying slot under the shard lock, and sweeps serialize
/// among themselves. Equivalent to `collect_bounded(horizon, u64::MAX)`.
pub fn collect(horizon: Epoch) -> CollectStats {
    collect_bounded(horizon, u64::MAX)
}

/// The bounded, incremental form of [`collect`]: free at most `max_slots`
/// slots, then return — leaving the rest of the backlog on a **persistent
/// sweep queue** whose head acts as the sweep cursor for the next call.
///
/// Pause-bounding contract:
///
/// * at most `max_slots` slots are reclaimed (the expensive part: an
///   exclusive shard lock plus a recursive value drop per slot);
/// * at most the entries queued at call start are *examined* (a few atomic
///   loads each); entries that must stay dying (too young, or shielded by a
///   pin) rotate to the back of the queue and are not revisited this call,
///   so a backlog of unreclaimable slots cannot spin the sweep.
///
/// The epoch/generation protocol is identical to a full sweep: every free
/// happens under the exclusive shard lock, resurrection (a lookup hit on a
/// queued slot — including one the cursor already passed and deferred)
/// still wins against a later sweep, and stale ids keep failing
/// deterministically even when their slot is reused while earlier queue
/// entries are still pending. Repeated bounded calls with a fresh horizon
/// (see [`collect_bounded_now`]) converge to exactly the live set and
/// [`ArenaStats`] a single full sweep reaches once `freed` and `pending`
/// both hit zero. `max_slots == 0` examines nothing and just reports the
/// backlog.
pub fn collect_bounded(horizon: Epoch, max_slots: u64) -> CollectStats {
    let obs_start = nrc_obs::enabled().then(std::time::Instant::now);
    let interner = &*INTERNER;
    let _sweep = interner.sweep.lock().expect("intern sweep");
    let mut limit = horizon.0.min(EPOCH.load(AtomicOrdering::Acquire));
    if let Some(p) = min_pinned() {
        limit = limit.min(p);
    }
    // The sweep queue is only touched under the sweep lock; `release` (which
    // may run concurrently, or re-entrantly from the value drops below)
    // pushes to the `dying` inbox instead, drained here.
    let mut queue = interner.backlog.lock().expect("intern sweep queue");
    {
        let mut inbox = interner.dying.lock().expect("intern dying list");
        queue.extend(inbox.drain(..));
    }
    let mut stats = CollectStats::default();
    let mut examine = if max_slots == 0 { 0 } else { queue.len() };
    while examine > 0 && stats.freed < max_slots {
        examine -= 1;
        let idx = queue
            .pop_front()
            .expect("examine is bounded by queue.len()");
        let s = slot(idx);
        let shard = &interner.shards[shard_of(s.hash.load(AtomicOrdering::Relaxed))];
        let mut map = shard.write().expect("intern shard");
        // Re-check everything under the exclusive shard lock: resolution of
        // the shard's ids and resurrection both take (at least) the shared
        // lock, so the state checked here cannot shift under our feet.
        if !s.enqueued.load(AtomicOrdering::Acquire) {
            // Resurrected by a lookup hit (or already processed).
            stats.resurrected += 1;
            continue;
        }
        if rc_of(idx).load(AtomicOrdering::Acquire) > 0 {
            // Retained again after its last release: alive. Clear the flag
            // so the next death re-enqueues it.
            s.enqueued.store(false, AtomicOrdering::Release);
            stats.resurrected += 1;
            continue;
        }
        if s.dead_since.load(AtomicOrdering::Acquire) >= limit {
            // Too young (or shielded by a pin): keep it dying, behind the
            // cursor — `examine` guarantees it is not revisited this call.
            queue.push_back(idx);
            stats.deferred += 1;
            continue;
        }
        // Reclaim: unhash, retire the generation, drop the value, free the
        // index. The generation bump happens before the pointer is cleared
        // so a stale id always fails its check instead of reading a hole.
        let hash = s.hash.load(AtomicOrdering::Relaxed);
        if let Some(bucket) = map.get_mut(&hash) {
            bucket.retain(|&i| i != idx);
            if bucket.is_empty() {
                map.remove(&hash);
            }
        }
        s.enqueued.store(false, AtomicOrdering::Release);
        s.gen.fetch_add(1, AtomicOrdering::AcqRel); // now odd: retired
        let ptr = s.value.swap(std::ptr::null_mut(), AtomicOrdering::AcqRel);
        let bytes = s.bytes.load(AtomicOrdering::Relaxed);
        drop(map);
        // SAFETY: the pointer came from `Box::into_raw` in `intern`, the
        // slot was occupied (enqueued ⇒ installed), and retiring the
        // generation under the exclusive shard lock removed every way to
        // obtain a fresh reference. Dropping may recursively `release`
        // nested children — which takes the dying-list inbox lock, not held
        // here (the sweep queue lock is, but `release` never touches it).
        drop(unsafe { Box::from_raw(ptr) });
        interner.free.lock().expect("intern free list").push(idx);
        interner.stats.live.fetch_sub(1, AtomicOrdering::Relaxed);
        interner.stats.dead.fetch_add(1, AtomicOrdering::Relaxed);
        interner
            .stats
            .bytes
            .fetch_sub(bytes, AtomicOrdering::Relaxed);
        stats.freed += 1;
    }
    stats.pending =
        queue.len() as u64 + interner.dying.lock().expect("intern dying list").len() as u64;
    if let Some(t) = obs_start {
        // Cached registry handles: collection runs at the GC cadence, not
        // per record, so one relaxed add each is well below noise.
        static COLLECTIONS: LazyLock<std::sync::Arc<nrc_obs::Counter>> =
            LazyLock::new(|| nrc_obs::counter("data.arena.collections"));
        static FREED: LazyLock<std::sync::Arc<nrc_obs::Counter>> =
            LazyLock::new(|| nrc_obs::counter("data.arena.freed_slots"));
        static COLLECT_NS: LazyLock<std::sync::Arc<nrc_obs::Histogram>> =
            LazyLock::new(|| nrc_obs::histogram("data.arena.collect_ns"));
        COLLECTIONS.inc();
        FREED.add(stats.freed);
        COLLECT_NS.record(t.elapsed().as_nanos() as u64);
    }
    stats
}

/// Advance the epoch and sweep everything that died before the advance —
/// the cadence the engine's `CollectPolicy` uses between batches.
pub fn collect_now() -> CollectStats {
    collect(advance_epoch())
}

/// Advance the epoch and run one *bounded* sweep increment (at most
/// `max_slots` slots freed) — the pacing primitive behind the engine's
/// `CollectPolicy::Bounded`. Keep calling until `freed` and `pending` are
/// both zero to reach the state a single [`collect_now`] would.
pub fn collect_bounded_now(max_slots: u64) -> CollectStats {
    collect_bounded(advance_epoch(), max_slots)
}

/// Number of dying-list entries awaiting a sweep (persistent sweep queue
/// plus the inbox of freshly-dead slots). Diagnostics/pacing: an upper
/// bound on how much a full [`collect`] would examine, not on what it
/// would free (queued entries may be resurrected or deferred).
pub fn pending_reclaim() -> u64 {
    let interner = &*INTERNER;
    let queued = interner.backlog.lock().expect("intern sweep queue").len();
    let inbox = interner.dying.lock().expect("intern dying list").len();
    (queued + inbox) as u64
}

/// A point-in-time snapshot of the arena's occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ArenaStats {
    /// Slots currently occupied by a distinct interned value.
    pub live: u64,
    /// Slots reclaimed by [`collect`] over the process lifetime.
    pub dead: u64,
    /// Allocations served from the free list instead of arena growth.
    pub reused: u64,
    /// Approximate heap bytes held by live interned values (shallow
    /// estimate; nested bag/dict children count toward their own slots).
    pub bytes: u64,
}

impl Deserialize for ArenaStats {}

/// Snapshot the arena occupancy counters.
pub fn arena_stats() -> ArenaStats {
    let s = &INTERNER.stats;
    ArenaStats {
        live: s.live.load(AtomicOrdering::Relaxed),
        dead: s.dead.load(AtomicOrdering::Relaxed),
        reused: s.reused.load(AtomicOrdering::Relaxed),
        bytes: s.bytes.load(AtomicOrdering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Structural hashing.
//
// A hand-rolled recursive hash (rather than `Value`'s derived `Hash`) so the
// exact same bytes can be produced from a bare `&Label` in `lookup_label`
// without constructing a `Value::Label` wrapper. Nested bag and dictionary
// contents hash by interned index, which is what makes hashing shallow.
// (Hashing the index without the generation is sound: a parent can only be
// found in the shard maps while it is live, and a live parent's live count
// on its children pins their generations.)
// ---------------------------------------------------------------------------

const TAG_BASE: u8 = 0;
const TAG_TUPLE: u8 = 1;
const TAG_BAG: u8 = 2;
const TAG_LABEL: u8 = 3;
const TAG_DICT: u8 = 4;

fn hash_value(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    hash_value_into(v, &mut h);
    h.finish()
}

fn hash_value_into(v: &Value, h: &mut DefaultHasher) {
    match v {
        Value::Base(b) => {
            h.write_u8(TAG_BASE);
            b.hash(h);
        }
        Value::Tuple(vs) => {
            h.write_u8(TAG_TUPLE);
            h.write_usize(vs.len());
            for v in vs {
                hash_value_into(v, h);
            }
        }
        Value::Bag(b) => {
            h.write_u8(TAG_BAG);
            for (id, m) in b.ids() {
                h.write_u32(id.index());
                h.write_i64(m);
            }
        }
        Value::Label(l) => {
            h.write_u8(TAG_LABEL);
            hash_label(l, h);
        }
        Value::Dict(d) => {
            h.write_u8(TAG_DICT);
            for (id, bag) in d.entry_ids() {
                h.write_u32(id.index());
                for (e, m) in bag.ids() {
                    h.write_u32(e.index());
                    h.write_i64(m);
                }
            }
        }
    }
}

fn hash_label(l: &Label, h: &mut DefaultHasher) {
    h.write_u32(l.index);
    h.write_usize(l.args.len());
    for a in &l.args {
        hash_value_into(a, h);
    }
}

// ---------------------------------------------------------------------------
// Canonical rank.
//
// `rank_of` maps a value to a 64-bit integer that is *order-homomorphic*
// with respect to the canonical `Ord` on `Value`: `a <= b` implies
// `rank(a) <= rank(b)` (so distinct ranks decide comparisons outright).
// Layout: 3 variant-tag bits (Base < Tuple < Bag < Label < Dict, the derive
// order), then a variant-specific 61-bit order-preserving prefix.
// ---------------------------------------------------------------------------

const VARIANT_SHIFT: u32 = 61;
/// Sequence prefixes (tuples, bag/dict supports) order by the first element:
/// `0` for empty, else `1 + first_rank >> 4` (monotone, fits 61 bits).
const SEQ_SHIFT: u32 = 4;

fn variant_tag(t: u8) -> u64 {
    (t as u64) << VARIANT_SHIFT
}

fn seq_prefix(first: Option<u64>) -> u64 {
    match first {
        None => 0,
        Some(r) => 1 + (r >> SEQ_SHIFT),
    }
}

fn rank_of(v: &Value) -> u64 {
    match v {
        Value::Base(b) => variant_tag(TAG_BASE) | base_rank(b),
        Value::Tuple(vs) => variant_tag(TAG_TUPLE) | seq_prefix(vs.first().map(rank_of)),
        Value::Bag(b) => variant_tag(TAG_BAG) | seq_prefix(b.first_id().map(Vid::rank)),
        // Labels order by (index, args): the 32-bit index fills the top of
        // the payload exactly; same-index labels tie-break deeply.
        Value::Label(l) => variant_tag(TAG_LABEL) | ((l.index as u64) << 29),
        Value::Dict(d) => variant_tag(TAG_DICT) | seq_prefix(d.first_label_id().map(Vid::rank)),
    }
}

/// `BaseValue` order is Bool < Int < Str (derive order): 2 sub-tag bits at
/// 59..60, then a 59-bit order-preserving payload prefix.
fn base_rank(b: &BaseValue) -> u64 {
    const SUB_SHIFT: u32 = 59;
    match b {
        BaseValue::Bool(x) => *x as u64,
        BaseValue::Int(i) => {
            // Flip the sign bit for an order-preserving u64, keep the top
            // 59 bits.
            (1u64 << SUB_SHIFT) | (((*i as u64) ^ (1u64 << 63)) >> 5)
        }
        BaseValue::Str(s) => {
            // First 7 bytes, big-endian, zero-padded: monotone w.r.t.
            // lexicographic byte order (ties resolve deeply).
            let mut buf = [0u8; 8];
            let n = s.len().min(7);
            buf[1..1 + n].copy_from_slice(&s.as_bytes()[..n]);
            (2u64 << SUB_SHIFT) | u64::from_be_bytes(buf)
        }
    }
}

fn depth_of(v: &Value) -> u32 {
    match v {
        Value::Base(_) => 0,
        Value::Tuple(vs) => vs.iter().map(depth_of).max().map_or(0, |d| d + 1),
        Value::Bag(b) => b.ids().map(|(id, _)| id.depth()).max().map_or(0, |d| d + 1),
        Value::Label(l) => l.args.iter().map(depth_of).max().map_or(0, |d| d + 1),
        Value::Dict(d) => d
            .entry_ids()
            .map(|(l, bag)| {
                l.depth().max(
                    bag.ids()
                        .map(|(id, _)| id.depth())
                        .max()
                        .map_or(0, |x| x + 1),
                )
            })
            .max()
            .map_or(0, |d| d + 1),
    }
}

/// Shallow heap-byte estimate of one interned value: the boxed node plus
/// its owned buffers; children held by id count toward their own slots,
/// inline tuple/label children toward this one. Diagnostics only.
fn approx_bytes(v: &Value) -> u64 {
    fn inline(v: &Value) -> u64 {
        let owned = match v {
            Value::Base(BaseValue::Str(s)) => s.len() as u64,
            Value::Base(_) => 0,
            Value::Tuple(vs) => vs.iter().map(inline).sum(),
            Value::Label(l) => l.args.iter().map(inline).sum(),
            // Id-keyed maps: count the entries, not the (separately
            // interned) elements.
            Value::Bag(b) => 24 * b.distinct_count() as u64,
            Value::Dict(d) => 24 * d.support_size() as u64,
        };
        std::mem::size_of::<Value>() as u64 + owned
    }
    inline(v)
}

// ---------------------------------------------------------------------------
// The arena: chunked storage with lock-free reads and generation-tagged
// slot reuse.
//
// Chunk `c` holds `1024 << c` entries starting at global index
// `1024 * (2^c - 1)`; 22 chunks cover the whole u32 id space. A slot is
// written (under the append mutex) strictly before the length is published
// with `Release`; `slot` re-reads the length with `Acquire` before indexing,
// which establishes the happens-before edge for the slot contents no matter
// how the `Vid` travelled between threads. Reused slots republish their
// contents through the generation counter instead (even = occupied, odd =
// retired); every field is atomic so republication is race-free.
// ---------------------------------------------------------------------------

const CHUNK_BASE_LOG2: u32 = 10;
const NUM_CHUNKS: usize = 22;

/// The freshly-computed metadata a slot is (re)installed with.
struct SlotInit {
    value: *mut Value,
    hash: u64,
    rank: u64,
    depth: u32,
    bytes: u64,
}

struct Slot {
    /// The interned value; null while the slot is retired.
    value: AtomicPtr<Value>,
    hash: AtomicU64,
    rank: AtomicU64,
    depth: AtomicU32,
    /// Even = occupied, odd = retired; bumps once on retire and once on
    /// reuse, so every occupancy has a distinct tag.
    gen: AtomicU32,
    /// Epoch stamp of the last transition of the live count to 0.
    dead_since: AtomicU64,
    /// Is the index currently on the dying list?
    enqueued: AtomicBool,
    /// `approx_bytes` of the stored value (for `ArenaStats::bytes`).
    bytes: AtomicU64,
}

impl Slot {
    fn new(m: SlotInit) -> Slot {
        Slot {
            value: AtomicPtr::new(m.value),
            hash: AtomicU64::new(m.hash),
            rank: AtomicU64::new(m.rank),
            depth: AtomicU32::new(m.depth),
            gen: AtomicU32::new(0),
            dead_since: AtomicU64::new(0),
            enqueued: AtomicBool::new(false),
            bytes: AtomicU64::new(m.bytes),
        }
    }

    /// Reinstall a retired slot with fresh metadata, returning the new
    /// (even) generation. Caller must hold the shard write lock of the new
    /// hash so the slot is unreachable until the map insert that follows.
    fn install(&self, m: SlotInit) -> u32 {
        debug_assert!(self.value.load(AtomicOrdering::Acquire).is_null());
        self.hash.store(m.hash, AtomicOrdering::Relaxed);
        self.rank.store(m.rank, AtomicOrdering::Relaxed);
        self.depth.store(m.depth, AtomicOrdering::Relaxed);
        self.bytes.store(m.bytes, AtomicOrdering::Relaxed);
        self.dead_since
            .store(EPOCH.load(AtomicOrdering::Acquire), AtomicOrdering::Relaxed);
        self.enqueued.store(false, AtomicOrdering::Relaxed);
        self.value.store(m.value, AtomicOrdering::Release);
        // Odd (retired) → next even: publishes the fields above.
        self.gen.fetch_add(1, AtomicOrdering::AcqRel) + 1
    }

    /// The stored value; caller must know the slot is occupied (e.g. its
    /// index was found in a shard map while holding the shard lock).
    fn value_ref(&self) -> &Value {
        let ptr = self.value.load(AtomicOrdering::Acquire);
        debug_assert!(!ptr.is_null(), "value_ref on a retired slot");
        unsafe { &*ptr }
    }
}

struct Arena {
    chunks: [AtomicPtr<Slot>; NUM_CHUNKS],
    /// Live counts, chunked with the same geometry as `chunks` but dense
    /// (4 bytes per slot, 16 per cache line): the retain/release sweeps of
    /// map clones and drops touch only this array in the common case.
    rc_chunks: [AtomicPtr<AtomicI32>; NUM_CHUNKS],
    len: AtomicU32,
}

#[inline]
fn locate(index: u32) -> (usize, usize) {
    let bucket = (index >> CHUNK_BASE_LOG2) + 1;
    let chunk = (u32::BITS - 1 - bucket.leading_zeros()) as usize;
    let start = ((1u32 << chunk) - 1) << CHUNK_BASE_LOG2;
    (chunk, (index - start) as usize)
}

impl Arena {
    const fn new() -> Arena {
        Arena {
            chunks: [const { AtomicPtr::new(std::ptr::null_mut()) }; NUM_CHUNKS],
            rc_chunks: [const { AtomicPtr::new(std::ptr::null_mut()) }; NUM_CHUNKS],
            len: AtomicU32::new(0),
        }
    }

    /// Append one entry; caller must hold the append mutex.
    fn push(&self, m: SlotInit) -> u32 {
        let n = self.len.load(AtomicOrdering::Relaxed);
        let (chunk, offset) = locate(n);
        assert!(chunk < NUM_CHUNKS, "intern arena exhausted (u32 id space)");
        let mut ptr = self.chunks[chunk].load(AtomicOrdering::Acquire);
        if ptr.is_null() {
            let cap = 1usize << (chunk as u32 + CHUNK_BASE_LOG2);
            let slab: Box<[MaybeUninit<Slot>]> = Box::new_uninit_slice(cap);
            ptr = Box::leak(slab).as_mut_ptr() as *mut Slot;
            // The matching live-count chunk, zero-initialized, published
            // (Release) before the slot chunk readers can index into it.
            let rcs: Box<[AtomicI32]> = (0..cap).map(|_| AtomicI32::new(0)).collect();
            self.rc_chunks[chunk].store(Box::leak(rcs).as_mut_ptr(), AtomicOrdering::Release);
            self.chunks[chunk].store(ptr, AtomicOrdering::Release);
        }
        // SAFETY: `offset` is within the chunk's capacity by construction,
        // the slot is written exactly once (appends are serialized by the
        // append mutex), and no reader touches it until `len` advertises it
        // (the Release store below).
        unsafe { ptr.add(offset).write(Slot::new(m)) };
        self.len.store(n + 1, AtomicOrdering::Release);
        n
    }
}

/// The dense live-count cell of a slot.
#[inline]
fn rc_of(index: u32) -> &'static AtomicI32 {
    let arena = &INTERNER.arena;
    let len = arena.len.load(AtomicOrdering::Acquire);
    debug_assert!(index < len, "dangling Vid {index} (len {len})");
    let (chunk, offset) = locate(index);
    let ptr = arena.rc_chunks[chunk].load(AtomicOrdering::Acquire);
    // SAFETY: the count chunk is allocated (zeroed) and published before
    // the slot chunk that makes `index` reachable, and never freed.
    unsafe { &*ptr.add(offset) }
}

#[inline]
fn slot(index: u32) -> &'static Slot {
    let arena = &INTERNER.arena;
    // The Acquire load pairs with the Release store in `push`, making the
    // slot write visible; a `Vid` can only hold an already-published index.
    let len = arena.len.load(AtomicOrdering::Acquire);
    debug_assert!(index < len, "dangling Vid {index} (len {len})");
    let (chunk, offset) = locate(index);
    let ptr = arena.chunks[chunk].load(AtomicOrdering::Acquire);
    // SAFETY: published slots are initialized (see `push`) and never moved
    // or freed — the slot *storage* is permanent; only the boxed values it
    // points to are reclaimed (behind the generation check).
    unsafe { &*ptr.add(offset) }
}

const SHARD_COUNT: usize = 16;

struct Counters {
    live: AtomicU64,
    dead: AtomicU64,
    reused: AtomicU64,
    bytes: AtomicU64,
}

struct Interner {
    shards: [RwLock<HashMap<u64, Vec<u32>>>; SHARD_COUNT],
    arena: Arena,
    /// Serializes arena appends across shards (lookups stay sharded).
    append: Mutex<()>,
    /// Inbox of indices whose live count hit zero, awaiting a sweep.
    /// `release` only ever touches this (it must stay cheap and re-entrant
    /// from value drops inside a sweep); sweeps drain it into `backlog`.
    dying: Mutex<Vec<u32>>,
    /// The persistent sweep queue: dying indices in visit order. The front
    /// is the sweep cursor — a bounded sweep pops from it until the budget
    /// runs out and leaves the remainder for the next call; entries that
    /// must stay dying rotate to the back. Only touched under `sweep`.
    backlog: Mutex<VecDeque<u32>>,
    /// Reclaimed indices available for reuse.
    free: Mutex<Vec<u32>>,
    /// Serializes sweeps.
    sweep: Mutex<()>,
    /// Outstanding epoch pins: epoch → pin count.
    pins: Mutex<BTreeMap<u64, u64>>,
    stats: Counters,
}

#[inline]
fn shard_of(hash: u64) -> usize {
    // The high bits: the map buckets already consume the low ones.
    (hash >> 59) as usize & (SHARD_COUNT - 1)
}

static INTERNER: LazyLock<Interner> = LazyLock::new(|| Interner {
    shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
    arena: Arena::new(),
    append: Mutex::new(()),
    dying: Mutex::new(Vec::new()),
    backlog: Mutex::new(VecDeque::new()),
    free: Mutex::new(Vec::new()),
    sweep: Mutex::new(()),
    pins: Mutex::new(BTreeMap::new()),
    stats: Counters {
        live: AtomicU64::new(0),
        dead: AtomicU64::new(0),
        reused: AtomicU64::new(0),
        bytes: AtomicU64::new(0),
    },
});

/// Serializes unit tests (crate-wide) that pin epochs or collect: the arena
/// is process-global, so "this slot is reclaimed by now" assertions only
/// hold while no sibling test pins or sweeps concurrently. Non-GC sibling
/// tests are harmless — they neither pin nor collect, and the resurrection
/// protocol protects their transient ids from our sweeps.
#[cfg(test)]
pub(crate) fn gc_test_serial() -> std::sync::MutexGuard<'static, ()> {
    static GC_TESTS: Mutex<()> = Mutex::new(());
    GC_TESTS.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::Bag;
    use crate::dict::Dictionary;

    #[test]
    fn interning_is_idempotent_and_equality_is_id_equality() {
        let a = intern(Value::int(42));
        let b = intern(Value::int(42));
        let c = intern(Value::int(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.value(), &Value::int(42));
    }

    #[test]
    fn lookup_does_not_intern() {
        let probe = Value::str("never-constructed-elsewhere-9f3a7");
        assert_eq!(lookup(&probe), None);
        let id = intern(probe.clone());
        assert_eq!(lookup(&probe), Some(id));
    }

    #[test]
    fn label_lookup_matches_value_lookup() {
        let l = Label::new(7, vec![Value::str("x"), Value::int(3)]);
        assert_eq!(lookup_label(&l), lookup(&Value::Label(l.clone())));
        let id = intern_label(l.clone());
        assert_eq!(lookup_label(&l), Some(id));
        assert_eq!(id.as_label(), &l);
    }

    #[test]
    fn vid_order_matches_value_order() {
        // A spread of values crossing every variant and rank edge case.
        let mut values = vec![
            Value::bool(false),
            Value::bool(true),
            Value::int(i64::MIN),
            Value::int(-1),
            Value::int(0),
            Value::int(1),
            Value::int(i64::MAX),
            Value::str(""),
            Value::str("a"),
            Value::str("a\u{0}"),
            Value::str("ab"),
            Value::str("aaaaaaaaaa"),
            Value::str("aaaaaaaaab"),
            Value::unit(),
            Value::Tuple(vec![Value::int(1)]),
            Value::Tuple(vec![Value::int(1), Value::int(2)]),
            Value::Tuple(vec![Value::int(2)]),
            Value::Bag(Bag::empty()),
            Value::Bag(Bag::from_pairs([(Value::int(1), 1)])),
            Value::Bag(Bag::from_pairs([(Value::int(1), 2)])),
            Value::Bag(Bag::from_pairs([(Value::int(2), 1)])),
            Value::Label(Label::atomic(0)),
            Value::Label(Label::new(0, vec![Value::int(5)])),
            Value::Label(Label::atomic(1)),
            Value::Dict(Dictionary::empty()),
            Value::Dict(Dictionary::singleton(Label::atomic(1), Bag::empty())),
        ];
        values.sort();
        let ids: Vec<Vid> = values.iter().cloned().map(intern).collect();
        for i in 0..ids.len() {
            for j in 0..ids.len() {
                assert_eq!(
                    ids[i].cmp(&ids[j]),
                    values[i].cmp(&values[j]),
                    "Vid order diverged from Value order at ({}, {})",
                    values[i],
                    values[j]
                );
            }
        }
    }

    #[test]
    fn rank_is_order_homomorphic() {
        let lo = intern(Value::int(-5));
        let hi = intern(Value::str("z"));
        assert!(lo.rank() < hi.rank());
        assert!(lo < hi);
    }

    #[test]
    fn depth_counts_constructor_nesting() {
        assert_eq!(intern(Value::int(1)).depth(), 0);
        assert_eq!(intern(Value::pair(Value::int(1), Value::int(2))).depth(), 1);
        let nested = Value::Bag(Bag::from_values([Value::pair(
            Value::int(1),
            Value::Bag(Bag::from_values([Value::int(2)])),
        )]));
        assert_eq!(intern(nested).depth(), 3);
    }

    #[test]
    fn locate_maps_indices_to_chunks() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(1023), (0, 1023));
        assert_eq!(locate(1024), (1, 0));
        assert_eq!(locate(3071), (1, 2047));
        assert_eq!(locate(3072), (2, 0));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| intern(Value::pair(Value::int(i % 50), Value::int(t % 2))))
                        .collect::<Vec<Vid>>()
                })
            })
            .collect();
        let results: Vec<Vec<Vid>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            for (a, b) in w[0].iter().zip(&w[1]) {
                assert_eq!(a.value() == b.value(), a == b);
            }
        }
    }

    // ---- reclamation ----
    //
    // GC tests use payloads unique to each test (`collect` is process-global
    // and the test binary shares one arena across threads) and serialize
    // among themselves via the crate-wide `gc_test_serial` lock.

    fn gc_serial() -> std::sync::MutexGuard<'static, ()> {
        gc_test_serial()
    }

    fn probe(tag: &str, i: usize) -> Value {
        Value::str(format!("gc-intern-test-{tag}-{i:04}"))
    }

    #[test]
    fn dropping_the_last_bag_reference_makes_a_slot_collectible() {
        let _serial = gc_serial();
        let vals: Vec<Value> = (0..64).map(|i| probe("dropbag", i)).collect();
        let bag = Bag::from_values(vals.iter().cloned());
        let ids: Vec<Vid> = bag.ids().map(|(id, _)| id).collect();
        drop(bag);
        let stats = collect_now();
        assert!(
            stats.freed >= 64,
            "expected the 64 dropped probes freed, got {stats:?}"
        );
        // Every id is now deterministically stale.
        for id in ids {
            assert!(matches!(id.try_value(), Err(DataError::StaleVid { .. })));
        }
    }

    #[test]
    fn reuse_assigns_a_fresh_generation_and_old_ids_stay_stale() {
        let _serial = gc_serial();
        let bag = Bag::from_values([probe("reuse", 0)]);
        let (old, _) = bag.ids().next().unwrap();
        drop(bag);
        collect_now();
        assert!(old.try_value().is_err(), "freed slot must report stale");
        // Drive reuse: intern fresh values until one lands on the freed
        // index (a sibling thread may snatch it first; then the generation
        // discipline is exercised by whoever got it).
        for i in 1..1024 {
            let v = probe("reuse", i);
            let id = intern(v.clone());
            if id.index() == old.index() {
                assert_ne!(id.generation(), old.generation());
                assert_eq!(id.value(), &v, "new generation resolves to new value");
                assert!(old.try_value().is_err(), "old generation stays stale");
                return;
            }
        }
        assert!(old.try_value().is_err());
    }

    #[test]
    fn lookup_hit_resurrects_a_dying_slot() {
        let _serial = gc_serial();
        let v = probe("resurrect", 0);
        let bag = Bag::from_values([v.clone()]);
        drop(bag); // now dying
        let id = intern(v.clone()); // hit: resurrects
        collect_now();
        assert_eq!(id.value(), &v, "resurrected id must still resolve");
        // And it can die + be collected again after a retain/release cycle.
        let bag = Bag::from_values([v.clone()]);
        drop(bag);
        collect_now();
        assert!(lookup(&v).is_none(), "slot should be reclaimed now");
    }

    #[test]
    fn pins_shield_dying_slots_until_released() {
        let _serial = gc_serial();
        let epoch_pin = pin();
        let v = probe("pinned", 0);
        let bag = Bag::from_values([v.clone()]);
        let (id, _) = bag.ids().next().unwrap();
        drop(bag);
        collect_now();
        assert_eq!(id.value(), &v, "pinned epoch must keep the slot resolvable");
        drop(epoch_pin);
        collect_now();
        assert!(lookup(&v).is_none(), "slot must be reclaimed after unpin");
    }

    #[test]
    fn pin_horizon_tracks_the_oldest_outstanding_pin() {
        let _serial = gc_serial();
        // Serialized: every pinning test in this crate holds `gc_serial`.
        assert_eq!(pin_horizon(), None);
        let p1 = pin();
        let e1 = p1.epoch();
        assert_eq!(pin_horizon(), Some(e1));
        advance_epoch();
        let p2 = pin();
        assert!(p2.epoch() >= e1);
        assert_eq!(pin_horizon(), Some(e1), "the oldest pin is the horizon");
        drop(p1);
        assert_eq!(
            pin_horizon(),
            Some(p2.epoch()),
            "dropping the oldest pin advances the horizon"
        );
        drop(p2);
        assert_eq!(pin_horizon(), None);
    }

    #[test]
    fn never_retained_slots_are_immortal() {
        let _serial = gc_serial();
        let v = probe("immortal", 0);
        let id = intern(v.clone());
        collect_now();
        collect_now();
        assert_eq!(id.value(), &v, "a transient id never entered a map");
        assert_eq!(lookup(&v), Some(id));
    }

    #[test]
    fn nested_children_are_released_in_cascade() {
        let _serial = gc_serial();
        let inner: Vec<Value> = (0..8).map(|i| probe("cascade", i)).collect();
        let nested = Value::Bag(Bag::from_values(inner.iter().cloned()));
        let bag = Bag::from_values([nested.clone()]);
        drop(bag);
        drop(nested);
        // Sweep 1 frees the outer bag value, whose drop releases the inner
        // probes; sweep 2 frees those.
        collect_now();
        collect_now();
        for v in &inner {
            assert!(lookup(v).is_none(), "nested child {v} should be reclaimed");
        }
    }

    // NOTE: non-GC sibling tests drop bags concurrently, so the dying
    // inbox can always pick up unrelated entries mid-test. The bounded-GC
    // assertions below therefore check budgets (exact — a sweep can never
    // exceed its `max_slots`), progress and this test's own payloads, never
    // exact queue lengths.

    #[test]
    fn bounded_collect_frees_at_most_k_and_the_cursor_persists() {
        let _serial = gc_serial();
        let vals: Vec<Value> = (0..20).map(|i| probe("bounded", i)).collect();
        let bag = Bag::from_values(vals.iter().cloned());
        let ids: Vec<Vid> = bag.ids().map(|(id, _)| id).collect();
        drop(bag);
        // ≥ 20 eligible entries queued, so the first bounded call must
        // exhaust its budget exactly.
        let first = collect_bounded_now(7);
        assert_eq!(first.freed, 7, "budget of 7 must free exactly 7: {first:?}");
        assert!(first.pending >= 13, "cursor must leave the rest queued");
        // The cursor persists: successive calls make progress until this
        // test's payloads are all reclaimed, never exceeding the budget.
        // (Polling via the ids: a value `lookup` would *resurrect* the
        // still-dying slots; `try_value` observes without interfering.)
        let mut rounds = 1;
        // Sibling tests can queue thousands of unrelated dying entries (the
        // bag tier tests intern >`Bag::SMALL_TIER_MAX` values apiece), so
        // the progress bound scales with the observed backlog instead of
        // assuming a small fixed queue.
        let limit = 64 + (first.pending / 7) as usize;
        while ids.iter().any(|id| id.try_value().is_ok()) {
            let s = collect_bounded_now(7);
            assert!(s.freed <= 7, "budget violated: {s:?}");
            rounds += 1;
            assert!(rounds < limit, "bounded sweep failed to reach all 20 slots");
        }
        assert!(rounds >= 3, "20 slots cannot drain in fewer than 3×7");
        for v in &vals {
            assert!(lookup(v).is_none(), "{v} must be reclaimed");
        }
    }

    #[test]
    fn zero_budget_only_reports_the_backlog() {
        let _serial = gc_serial();
        let bag = Bag::from_values((0..5).map(|i| probe("zerobudget", i)));
        drop(bag);
        let stats = collect_bounded_now(0);
        assert_eq!(stats.freed, 0, "zero budget must not free: {stats:?}");
        assert!(stats.pending >= 5);
        assert!(pending_reclaim() >= 5);
        let full = collect_bounded_now(u64::MAX);
        assert!(full.freed >= 5, "{full:?}");
    }

    #[test]
    fn lookup_hit_resurrects_a_slot_the_cursor_passed_but_deferred() {
        let _serial = gc_serial();
        // Shield the deaths behind a pin so the bounded sweep's cursor
        // passes every entry without freeing it (all deferred).
        let epoch_pin = pin();
        let vals: Vec<Value> = (0..8).map(|i| probe("passed", i)).collect();
        let bag = Bag::from_values(vals.iter().cloned());
        drop(bag);
        let swept = collect_bounded_now(u64::MAX);
        assert_eq!(swept.freed, 0, "pinned slots must not be freed: {swept:?}");
        assert!(swept.deferred >= 8, "{swept:?}");
        // The cursor has passed (and re-queued) every entry; a lookup hit
        // now must still win against the next sweep.
        let kept = intern(vals[3].clone());
        drop(epoch_pin);
        collect_now();
        assert_eq!(kept.value(), &vals[3], "resurrected id must resolve");
        for (i, v) in vals.iter().enumerate() {
            if i == 3 {
                assert_eq!(lookup(v), Some(kept));
            } else {
                assert!(lookup(v).is_none(), "{v} should be reclaimed");
            }
        }
    }

    #[test]
    fn repeated_bounded_collects_converge_through_the_release_cascade() {
        let _serial = gc_serial();
        // Nested structure so convergence has to ride the release cascade:
        // freeing the outer bag's slot releases the inner probes, which only
        // then join the queue. (Exact ArenaStats parity with a full sweep is
        // asserted in tests/prop_bounded_gc.rs, whose binary can serialize
        // every arena touch; sibling tests here intern concurrently.)
        let inner: Vec<Value> = (0..6).map(|i| probe("converge", i)).collect();
        let nested = Value::Bag(Bag::from_values(inner.iter().cloned()));
        let bag = Bag::from_values([nested.clone()]);
        drop(bag);
        drop(nested);
        let mut rounds = 0;
        loop {
            let s = collect_bounded_now(2);
            assert!(s.freed <= 2, "budget violated: {s:?}");
            if s.freed == 0 && s.pending == 0 {
                break;
            }
            rounds += 1;
            assert!(rounds < 64, "bounded collection failed to converge");
        }
        for v in &inner {
            assert!(lookup(v).is_none(), "{v} should be reclaimed");
        }
    }

    #[test]
    fn collect_stats_and_arena_stats_are_consistent() {
        let _serial = gc_serial();
        let vals: Vec<Value> = (0..32).map(|i| probe("stats", i)).collect();
        let before = arena_stats();
        let bag = Bag::from_values(vals.iter().cloned());
        let mid = arena_stats();
        assert!(mid.live >= before.live + 32);
        assert!(mid.bytes > before.bytes);
        drop(bag);
        let swept = collect_now();
        assert!(swept.freed >= 32);
        let after = arena_stats();
        assert!(after.dead >= before.dead + 32);
    }
}
