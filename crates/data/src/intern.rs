//! Hash-consed value interning.
//!
//! Every hot path of the reproduction — delta application, shredded
//! dictionary lookups, recursive auxiliary refresh — manipulates nested
//! [`Value`] trees through [`crate::Bag`]s. Storing the trees themselves as
//! map keys makes each comparison a deep `Ord` traversal and each copy a
//! deep clone. This module applies the standard systems remedy, *hash
//! consing*: a global, append-only arena assigns every distinct `Value` a
//! small identifier [`Vid`], and all bag/dictionary internals key on `Vid`
//! instead of `Value`.
//!
//! The arena caches three things per interned value:
//!
//! * **hash** — a structural hash (nested interned children hash by id), so
//!   `Hash` for `Vid` is `O(1)`;
//! * **rank** — an *order-homomorphic* 64-bit prefix of the value's position
//!   in the canonical [`Ord`] on `Value`: `rank(a) < rank(b)` implies
//!   `a < b`. Comparisons resolve with one integer compare in the common
//!   case and fall back to a deep compare only on rank ties (where interned
//!   sub-structure still short-circuits equal subtrees in `O(1)`);
//! * **depth** — the constructor nesting depth, handy for diagnostics and
//!   cost accounting.
//!
//! Equality of `Vid`s is a `u32` compare: hash consing guarantees equal
//! values intern to equal ids. Iteration order of id-keyed maps equals the
//! seed's value-keyed order because `Ord for Vid` refines the exact same
//! total order (see `vid_order_matches_value_order` below).
//!
//! # Concurrency & memory
//!
//! Interning is sharded (16 hash-sharded read-write locks — lookups and
//! intern hits take only the shared read lock) and appends to a chunked,
//! append-only arena; resolving a `Vid` back to its `&'static Value` is
//! lock-free (one `Acquire` load). Interned values are leaked by design —
//! the arena is global and lives for the process, which is the hash-consing
//! trade: memory is bounded by the number of *distinct* values ever
//! constructed, amortized across every bag that mentions them. For
//! unbounded update streams with ever-fresh values that bound grows with
//! the stream; arena garbage collection (epoch- or refcount-based) is a
//! ROADMAP item and would slot in behind this module's API.

use crate::base::BaseValue;
use crate::dict::Label;
use crate::value::Value;
use serde::{Deserialize, Json, Serialize};
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering as AtomicOrdering};
use std::sync::{LazyLock, Mutex, RwLock};

/// An interned value id: a handle into the global hash-consing arena.
///
/// `Vid` is `Copy`, compares for equality in `O(1)`, hashes in `O(1)` via
/// the cached structural hash, and orders consistently with the canonical
/// [`Ord`] on [`Value`] (rank prefix first, deep compare only on ties).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Vid(u32);

impl Vid {
    /// The interned value this id stands for.
    #[inline]
    pub fn value(self) -> &'static Value {
        meta(self.0).value
    }

    /// The cached structural hash.
    #[inline]
    pub fn cached_hash(self) -> u64 {
        meta(self.0).hash
    }

    /// The cached order-homomorphic rank prefix.
    #[inline]
    pub fn rank(self) -> u64 {
        meta(self.0).rank
    }

    /// The cached constructor nesting depth (base values and labels with
    /// flat arguments have depth 0).
    #[inline]
    pub fn depth(self) -> u32 {
        meta(self.0).depth
    }

    /// The raw arena index (diagnostics only — not stable across processes).
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Resolve to a label, panicking when the interned value is not one.
    /// Dictionary supports rely on this: their keys are always labels.
    #[inline]
    pub(crate) fn as_label(self) -> &'static Label {
        match self.value() {
            Value::Label(l) => l,
            other => unreachable!("interned dictionary key is not a label: {other}"),
        }
    }
}

impl PartialOrd for Vid {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Vid {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        if self.0 == other.0 {
            return Ordering::Equal;
        }
        let (a, b) = (meta(self.0), meta(other.0));
        match a.rank.cmp(&b.rank) {
            // Distinct values with equal rank prefixes: fall back to the
            // deep canonical order. Shared interned subtrees still compare
            // in O(1) through nested `Vid` equality.
            Ordering::Equal => a.value.cmp(b.value),
            unequal => unequal,
        }
    }
}

impl Hash for Vid {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(meta(self.0).hash);
    }
}

impl fmt::Debug for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vid({} ↦ {})", self.0, self.value())
    }
}

impl fmt::Display for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value())
    }
}

impl Serialize for Vid {
    /// Ids are process-local; on the wire a `Vid` is its resolved value, so
    /// the serialized form of id-keyed bags matches the seed representation.
    fn to_json(&self) -> Json {
        self.value().to_json()
    }
}

impl Deserialize for Vid {}

/// Scan one hash bucket for an already-interned equal value.
fn find_interned(map: &HashMap<u64, Vec<u32>>, hash: u64, value: &Value) -> Option<u32> {
    map.get(&hash)?
        .iter()
        .copied()
        .find(|&id| meta(id).value == value)
}

/// Intern a value, returning its id (allocating on first sight).
pub fn intern(value: Value) -> Vid {
    let hash = hash_value(&value);
    let interner = &*INTERNER;
    let shard = &interner.shards[shard_of(hash)];
    // Hits (the steady-state case) take only the shared read lock.
    {
        let map = shard.read().expect("intern shard");
        if let Some(id) = find_interned(&map, hash, &value) {
            return Vid(id);
        }
    }
    let rank = rank_of(&value);
    let depth = depth_of(&value);
    let mut map = shard.write().expect("intern shard");
    // Another thread may have interned the same value between the locks.
    if let Some(id) = find_interned(&map, hash, &value) {
        return Vid(id);
    }
    let leaked: &'static Value = Box::leak(Box::new(value));
    let id = {
        let _append = interner.append.lock().expect("intern append");
        interner.arena.push(Meta {
            value: leaked,
            hash,
            rank,
            depth,
        })
    };
    map.entry(hash).or_default().push(id);
    Vid(id)
}

/// Look a value up without interning it: `None` when it was never interned.
/// Pure reads (e.g. [`crate::Bag::multiplicity`]) use this so probing for
/// absent values does not grow the arena; concurrent readers share the
/// shard lock.
pub fn lookup(value: &Value) -> Option<Vid> {
    let hash = hash_value(value);
    let map = INTERNER.shards[shard_of(hash)]
        .read()
        .expect("intern shard");
    find_interned(&map, hash, value).map(Vid)
}

/// Look up a label's id without constructing (or interning) a `Value`
/// wrapper — the dictionary-support fast path (shared read lock only).
pub fn lookup_label(label: &Label) -> Option<Vid> {
    let mut h = DefaultHasher::new();
    h.write_u8(TAG_LABEL);
    hash_label(label, &mut h);
    let hash = h.finish();
    let map = INTERNER.shards[shard_of(hash)]
        .read()
        .expect("intern shard");
    let ids = map.get(&hash)?;
    ids.iter()
        .copied()
        .find(|&id| matches!(meta(id).value, Value::Label(l) if l == label))
        .map(Vid)
}

/// Intern a label as a dictionary-support key.
pub fn intern_label(label: Label) -> Vid {
    intern(Value::Label(label))
}

/// Number of distinct values interned so far (monotone; diagnostics).
pub fn interned_count() -> u64 {
    INTERNER.arena.len.load(AtomicOrdering::Acquire) as u64
}

// ---------------------------------------------------------------------------
// Structural hashing.
//
// A hand-rolled recursive hash (rather than `Value`'s derived `Hash`) so the
// exact same bytes can be produced from a bare `&Label` in `lookup_label`
// without constructing a `Value::Label` wrapper. Nested bag and dictionary
// contents hash by interned id, which is what makes hashing shallow.
// ---------------------------------------------------------------------------

const TAG_BASE: u8 = 0;
const TAG_TUPLE: u8 = 1;
const TAG_BAG: u8 = 2;
const TAG_LABEL: u8 = 3;
const TAG_DICT: u8 = 4;

fn hash_value(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    hash_value_into(v, &mut h);
    h.finish()
}

fn hash_value_into(v: &Value, h: &mut DefaultHasher) {
    match v {
        Value::Base(b) => {
            h.write_u8(TAG_BASE);
            b.hash(h);
        }
        Value::Tuple(vs) => {
            h.write_u8(TAG_TUPLE);
            h.write_usize(vs.len());
            for v in vs {
                hash_value_into(v, h);
            }
        }
        Value::Bag(b) => {
            h.write_u8(TAG_BAG);
            for (id, m) in b.ids() {
                h.write_u32(id.index());
                h.write_i64(m);
            }
        }
        Value::Label(l) => {
            h.write_u8(TAG_LABEL);
            hash_label(l, h);
        }
        Value::Dict(d) => {
            h.write_u8(TAG_DICT);
            for (id, bag) in d.entry_ids() {
                h.write_u32(id.index());
                for (e, m) in bag.ids() {
                    h.write_u32(e.index());
                    h.write_i64(m);
                }
            }
        }
    }
}

fn hash_label(l: &Label, h: &mut DefaultHasher) {
    h.write_u32(l.index);
    h.write_usize(l.args.len());
    for a in &l.args {
        hash_value_into(a, h);
    }
}

// ---------------------------------------------------------------------------
// Canonical rank.
//
// `rank_of` maps a value to a 64-bit integer that is *order-homomorphic*
// with respect to the canonical `Ord` on `Value`: `a <= b` implies
// `rank(a) <= rank(b)` (so distinct ranks decide comparisons outright).
// Layout: 3 variant-tag bits (Base < Tuple < Bag < Label < Dict, the derive
// order), then a variant-specific 61-bit order-preserving prefix.
// ---------------------------------------------------------------------------

const VARIANT_SHIFT: u32 = 61;
/// Sequence prefixes (tuples, bag/dict supports) order by the first element:
/// `0` for empty, else `1 + first_rank >> 4` (monotone, fits 61 bits).
const SEQ_SHIFT: u32 = 4;

fn variant_tag(t: u8) -> u64 {
    (t as u64) << VARIANT_SHIFT
}

fn seq_prefix(first: Option<u64>) -> u64 {
    match first {
        None => 0,
        Some(r) => 1 + (r >> SEQ_SHIFT),
    }
}

fn rank_of(v: &Value) -> u64 {
    match v {
        Value::Base(b) => variant_tag(TAG_BASE) | base_rank(b),
        Value::Tuple(vs) => variant_tag(TAG_TUPLE) | seq_prefix(vs.first().map(rank_of)),
        Value::Bag(b) => variant_tag(TAG_BAG) | seq_prefix(b.first_id().map(Vid::rank)),
        // Labels order by (index, args): the 32-bit index fills the top of
        // the payload exactly; same-index labels tie-break deeply.
        Value::Label(l) => variant_tag(TAG_LABEL) | ((l.index as u64) << 29),
        Value::Dict(d) => variant_tag(TAG_DICT) | seq_prefix(d.first_label_id().map(Vid::rank)),
    }
}

/// `BaseValue` order is Bool < Int < Str (derive order): 2 sub-tag bits at
/// 59..60, then a 59-bit order-preserving payload prefix.
fn base_rank(b: &BaseValue) -> u64 {
    const SUB_SHIFT: u32 = 59;
    match b {
        BaseValue::Bool(x) => *x as u64,
        BaseValue::Int(i) => {
            // Flip the sign bit for an order-preserving u64, keep the top
            // 59 bits.
            (1u64 << SUB_SHIFT) | (((*i as u64) ^ (1u64 << 63)) >> 5)
        }
        BaseValue::Str(s) => {
            // First 7 bytes, big-endian, zero-padded: monotone w.r.t.
            // lexicographic byte order (ties resolve deeply).
            let mut buf = [0u8; 8];
            let n = s.len().min(7);
            buf[1..1 + n].copy_from_slice(&s.as_bytes()[..n]);
            (2u64 << SUB_SHIFT) | u64::from_be_bytes(buf)
        }
    }
}

fn depth_of(v: &Value) -> u32 {
    match v {
        Value::Base(_) => 0,
        Value::Tuple(vs) => vs.iter().map(depth_of).max().map_or(0, |d| d + 1),
        Value::Bag(b) => b.ids().map(|(id, _)| id.depth()).max().map_or(0, |d| d + 1),
        Value::Label(l) => l.args.iter().map(depth_of).max().map_or(0, |d| d + 1),
        Value::Dict(d) => d
            .entry_ids()
            .map(|(l, bag)| {
                l.depth().max(
                    bag.ids()
                        .map(|(id, _)| id.depth())
                        .max()
                        .map_or(0, |x| x + 1),
                )
            })
            .max()
            .map_or(0, |d| d + 1),
    }
}

// ---------------------------------------------------------------------------
// The arena: chunked, append-only, lock-free reads.
//
// Chunk `c` holds `1024 << c` entries starting at global index
// `1024 * (2^c - 1)`; 22 chunks cover the whole u32 id space. A slot is
// written (under the append mutex) strictly before the length is published
// with `Release`; `meta` re-reads the length with `Acquire` before indexing,
// which establishes the happens-before edge for the slot contents no matter
// how the `Vid` travelled between threads.
// ---------------------------------------------------------------------------

const CHUNK_BASE_LOG2: u32 = 10;
const NUM_CHUNKS: usize = 22;

struct Meta {
    value: &'static Value,
    hash: u64,
    rank: u64,
    depth: u32,
}

struct Arena {
    chunks: [AtomicPtr<Meta>; NUM_CHUNKS],
    len: AtomicU32,
}

#[inline]
fn locate(index: u32) -> (usize, usize) {
    let bucket = (index >> CHUNK_BASE_LOG2) + 1;
    let chunk = (u32::BITS - 1 - bucket.leading_zeros()) as usize;
    let start = ((1u32 << chunk) - 1) << CHUNK_BASE_LOG2;
    (chunk, (index - start) as usize)
}

impl Arena {
    const fn new() -> Arena {
        Arena {
            chunks: [const { AtomicPtr::new(std::ptr::null_mut()) }; NUM_CHUNKS],
            len: AtomicU32::new(0),
        }
    }

    /// Append one entry; caller must hold the append mutex.
    fn push(&self, m: Meta) -> u32 {
        let n = self.len.load(AtomicOrdering::Relaxed);
        let (chunk, offset) = locate(n);
        assert!(chunk < NUM_CHUNKS, "intern arena exhausted (u32 id space)");
        let mut ptr = self.chunks[chunk].load(AtomicOrdering::Acquire);
        if ptr.is_null() {
            let cap = 1usize << (chunk as u32 + CHUNK_BASE_LOG2);
            let slab: Box<[MaybeUninit<Meta>]> = Box::new_uninit_slice(cap);
            ptr = Box::leak(slab).as_mut_ptr() as *mut Meta;
            self.chunks[chunk].store(ptr, AtomicOrdering::Release);
        }
        // SAFETY: `offset` is within the chunk's capacity by construction,
        // the slot is written exactly once (appends are serialized by the
        // append mutex), and no reader touches it until `len` advertises it
        // (the Release store below).
        unsafe { ptr.add(offset).write(m) };
        self.len.store(n + 1, AtomicOrdering::Release);
        n
    }
}

#[inline]
fn meta(index: u32) -> &'static Meta {
    let arena = &INTERNER.arena;
    // The Acquire load pairs with the Release store in `push`, making the
    // slot write visible; a `Vid` can only hold an already-published index.
    let len = arena.len.load(AtomicOrdering::Acquire);
    debug_assert!(index < len, "dangling Vid {index} (len {len})");
    let (chunk, offset) = locate(index);
    let ptr = arena.chunks[chunk].load(AtomicOrdering::Acquire);
    // SAFETY: published slots are initialized (see `push`) and never moved
    // or freed — the arena is append-only and leaked.
    unsafe { &*ptr.add(offset) }
}

const SHARD_COUNT: usize = 16;

struct Interner {
    shards: [RwLock<HashMap<u64, Vec<u32>>>; SHARD_COUNT],
    arena: Arena,
    /// Serializes arena appends across shards (lookups stay sharded).
    append: Mutex<()>,
}

#[inline]
fn shard_of(hash: u64) -> usize {
    // The high bits: the map buckets already consume the low ones.
    (hash >> 59) as usize & (SHARD_COUNT - 1)
}

static INTERNER: LazyLock<Interner> = LazyLock::new(|| Interner {
    shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
    arena: Arena::new(),
    append: Mutex::new(()),
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::Bag;
    use crate::dict::Dictionary;

    #[test]
    fn interning_is_idempotent_and_equality_is_id_equality() {
        let a = intern(Value::int(42));
        let b = intern(Value::int(42));
        let c = intern(Value::int(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.value(), &Value::int(42));
    }

    #[test]
    fn lookup_does_not_intern() {
        let probe = Value::str("never-constructed-elsewhere-9f3a7");
        assert_eq!(lookup(&probe), None);
        let id = intern(probe.clone());
        assert_eq!(lookup(&probe), Some(id));
    }

    #[test]
    fn label_lookup_matches_value_lookup() {
        let l = Label::new(7, vec![Value::str("x"), Value::int(3)]);
        assert_eq!(lookup_label(&l), lookup(&Value::Label(l.clone())));
        let id = intern_label(l.clone());
        assert_eq!(lookup_label(&l), Some(id));
        assert_eq!(id.as_label(), &l);
    }

    #[test]
    fn vid_order_matches_value_order() {
        // A spread of values crossing every variant and rank edge case.
        let mut values = vec![
            Value::bool(false),
            Value::bool(true),
            Value::int(i64::MIN),
            Value::int(-1),
            Value::int(0),
            Value::int(1),
            Value::int(i64::MAX),
            Value::str(""),
            Value::str("a"),
            Value::str("a\u{0}"),
            Value::str("ab"),
            Value::str("aaaaaaaaaa"),
            Value::str("aaaaaaaaab"),
            Value::unit(),
            Value::Tuple(vec![Value::int(1)]),
            Value::Tuple(vec![Value::int(1), Value::int(2)]),
            Value::Tuple(vec![Value::int(2)]),
            Value::Bag(Bag::empty()),
            Value::Bag(Bag::from_pairs([(Value::int(1), 1)])),
            Value::Bag(Bag::from_pairs([(Value::int(1), 2)])),
            Value::Bag(Bag::from_pairs([(Value::int(2), 1)])),
            Value::Label(Label::atomic(0)),
            Value::Label(Label::new(0, vec![Value::int(5)])),
            Value::Label(Label::atomic(1)),
            Value::Dict(Dictionary::empty()),
            Value::Dict(Dictionary::singleton(Label::atomic(1), Bag::empty())),
        ];
        values.sort();
        let ids: Vec<Vid> = values.iter().cloned().map(intern).collect();
        for i in 0..ids.len() {
            for j in 0..ids.len() {
                assert_eq!(
                    ids[i].cmp(&ids[j]),
                    values[i].cmp(&values[j]),
                    "Vid order diverged from Value order at ({}, {})",
                    values[i],
                    values[j]
                );
            }
        }
    }

    #[test]
    fn rank_is_order_homomorphic() {
        let lo = intern(Value::int(-5));
        let hi = intern(Value::str("z"));
        assert!(lo.rank() < hi.rank());
        assert!(lo < hi);
    }

    #[test]
    fn depth_counts_constructor_nesting() {
        assert_eq!(intern(Value::int(1)).depth(), 0);
        assert_eq!(intern(Value::pair(Value::int(1), Value::int(2))).depth(), 1);
        let nested = Value::Bag(Bag::from_values([Value::pair(
            Value::int(1),
            Value::Bag(Bag::from_values([Value::int(2)])),
        )]));
        assert_eq!(intern(nested).depth(), 3);
    }

    #[test]
    fn locate_maps_indices_to_chunks() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(1023), (0, 1023));
        assert_eq!(locate(1024), (1, 0));
        assert_eq!(locate(3071), (1, 2047));
        assert_eq!(locate(3072), (2, 0));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| intern(Value::pair(Value::int(i % 50), Value::int(t % 2))))
                        .collect::<Vec<Vid>>()
                })
            })
            .collect();
        let results: Vec<Vec<Vid>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            for (a, b) in w[0].iter().zip(&w[1]) {
                assert_eq!(a.value() == b.value(), a == b);
            }
        }
    }
}
