//! A named collection of top-level bags ("relations") with schemas.

use crate::bag::Bag;
use crate::error::DataError;
use crate::types::Type;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A database: relation names mapped to bag instances, with declared element
/// types (`Sch(R) = B`, Fig. 3's relation typing rule).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Database {
    relations: BTreeMap<String, Bag>,
    schemas: BTreeMap<String, Type>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Declare relation `name` with element type `elem_ty` and contents
    /// `bag`. Replaces any existing relation of that name.
    pub fn insert_relation(&mut self, name: impl Into<String>, elem_ty: Type, bag: Bag) {
        let name = name.into();
        debug_assert!(
            bag.iter().all(|(v, _)| v.conforms_to(&elem_ty)),
            "relation {name} contains values not conforming to its schema"
        );
        self.schemas.insert(name.clone(), elem_ty);
        self.relations.insert(name, bag);
    }

    /// Declare an empty relation with the given element type.
    pub fn declare(&mut self, name: impl Into<String>, elem_ty: Type) {
        self.insert_relation(name, elem_ty, Bag::empty());
    }

    /// The contents of relation `name`.
    pub fn get(&self, name: &str) -> Option<&Bag> {
        self.relations.get(name)
    }

    /// The element type of relation `name`.
    pub fn schema(&self, name: &str) -> Option<&Type> {
        self.schemas.get(name)
    }

    /// Apply an update `ΔR` to relation `name` via `⊎` (insertions carry
    /// positive, deletions negative multiplicities).
    pub fn apply_update(&mut self, name: &str, delta: &Bag) -> Result<(), DataError> {
        match self.relations.get_mut(name) {
            Some(r) => {
                r.union_assign(delta);
                Ok(())
            }
            None => Err(DataError::Shape {
                expected: format!("relation {name}"),
                got: "no such relation".to_owned(),
            }),
        }
    }

    /// Apply a sequence of coalesced per-relation deltas, each via `⊎`.
    ///
    /// Equivalent to calling [`Database::apply_update`] once per pair, but
    /// validates every relation name up front so the database is left
    /// untouched when any name is unknown (no partial application).
    pub fn apply_updates<'a, I>(&mut self, updates: I) -> Result<(), DataError>
    where
        I: IntoIterator<Item = (&'a str, &'a Bag)>,
        I::IntoIter: Clone,
    {
        let updates = updates.into_iter();
        if let Some(missing) = updates
            .clone()
            .find(|(n, _)| !self.relations.contains_key(*n))
        {
            return Err(DataError::Shape {
                expected: format!("relation {}", missing.0),
                got: "no such relation".to_owned(),
            });
        }
        for (name, delta) in updates {
            self.relations
                .get_mut(name)
                .expect("validated above")
                .union_assign(delta);
        }
        Ok(())
    }

    /// Iterate over `(name, bag)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Bag)> {
        self.relations.iter()
    }

    /// Relation names in order.
    pub fn relation_names(&self) -> impl Iterator<Item = &String> {
        self.relations.keys()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the database empty (no relations declared)?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total cardinality across all relations (absolute multiplicities).
    pub fn total_cardinality(&self) -> u64 {
        self.relations.values().map(Bag::cardinality).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, bag) in self.iter() {
            writeln!(f, "{name} = {bag}")?;
        }
        Ok(())
    }
}

/// Build the movie relation of the paper's motivating example (§2).
///
/// `M(name, gen, dir)` containing Drive, Skyfall and Rush. Exposed here so
/// every crate's tests and docs can reuse the exact running example.
pub fn example_movies() -> Database {
    let movie = |name: &str, gen: &str, dir: &str| {
        Value::Tuple(vec![Value::str(name), Value::str(gen), Value::str(dir)])
    };
    let ty = Type::Tuple(vec![
        Type::Base(crate::base::BaseType::Str),
        Type::Base(crate::base::BaseType::Str),
        Type::Base(crate::base::BaseType::Str),
    ]);
    let bag = Bag::from_values([
        movie("Drive", "Drama", "Refn"),
        movie("Skyfall", "Action", "Mendes"),
        movie("Rush", "Action", "Howard"),
    ]);
    let mut db = Database::new();
    db.insert_relation("M", ty, bag);
    db
}

/// The update `ΔM` of §2: a single tuple ⟨Jarhead, Drama, Mendes⟩.
pub fn example_movies_update() -> Bag {
    Bag::singleton(Value::Tuple(vec![
        Value::str("Jarhead"),
        Value::str("Drama"),
        Value::str("Mendes"),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::BaseType;

    #[test]
    fn insert_and_get() {
        let db = example_movies();
        assert_eq!(db.len(), 1);
        assert_eq!(db.get("M").unwrap().cardinality(), 3);
        assert!(db.get("N").is_none());
        assert!(db.schema("M").unwrap().is_tbase());
    }

    #[test]
    fn apply_update_unions() {
        let mut db = example_movies();
        db.apply_update("M", &example_movies_update()).unwrap();
        assert_eq!(db.get("M").unwrap().cardinality(), 4);
        // Deleting Jarhead again restores the original instance.
        db.apply_update("M", &example_movies_update().negate())
            .unwrap();
        assert_eq!(db.get("M").unwrap(), example_movies().get("M").unwrap());
    }

    #[test]
    fn apply_update_to_missing_relation_errors() {
        let mut db = Database::new();
        assert!(db.apply_update("M", &Bag::empty()).is_err());
    }

    #[test]
    fn apply_updates_applies_all_or_nothing() {
        let mut db = example_movies();
        let delta = example_movies_update();
        db.apply_updates([("M", &delta), ("M", &delta)]).unwrap();
        assert_eq!(db.get("M").unwrap().cardinality(), 5);
        // Unknown relation: rejected before anything is applied.
        let before = db.clone();
        assert!(db.apply_updates([("M", &delta), ("Zzz", &delta)]).is_err());
        assert_eq!(db, before);
    }

    #[test]
    fn declare_creates_empty() {
        let mut db = Database::new();
        db.declare("R", Type::Base(BaseType::Int));
        assert!(db.get("R").unwrap().is_empty());
        assert_eq!(db.schema("R"), Some(&Type::Base(BaseType::Int)));
        assert_eq!(db.total_cardinality(), 0);
    }

    #[test]
    fn display_lists_relations() {
        let mut db = Database::new();
        db.insert_relation(
            "R",
            Type::Base(BaseType::Int),
            Bag::from_values([Value::int(1)]),
        );
        assert_eq!(db.to_string(), "R = {1}\n");
    }
}
