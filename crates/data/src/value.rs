//! Nested values.
//!
//! A [`Value`] is an element of the semantic domain of the calculus: nested
//! tuples over base values, generalized bags, and — after shredding (§5) —
//! labels and label dictionaries.

use crate::bag::Bag;
use crate::base::BaseValue;
use crate::dict::{Dictionary, Label};
use crate::error::DataError;
use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A value of the (label-extended) nested relational calculus.
///
/// Values are totally ordered; this order is what keeps [`Bag`] contents and
/// dictionary supports canonical, making structural equality of query results
/// a simple `==`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A primitive value.
    Base(BaseValue),
    /// An n-ary tuple; `Tuple(vec![])` is the unit value `⟨⟩`.
    Tuple(Vec<Value>),
    /// A bag value.
    Bag(Bag),
    /// A label standing for an inner bag (shredded representation, §5.1).
    Label(Label),
    /// A label dictionary (shredding context component, §5.1).
    Dict(Dictionary),
}

impl Value {
    /// The unit value `⟨⟩`.
    pub fn unit() -> Value {
        Value::Tuple(vec![])
    }

    /// Convenience constructor for integer base values.
    pub fn int(i: i64) -> Value {
        Value::Base(BaseValue::Int(i))
    }

    /// Convenience constructor for string base values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Base(BaseValue::Str(s.into()))
    }

    /// Convenience constructor for boolean base values.
    pub fn bool(b: bool) -> Value {
        Value::Base(BaseValue::Bool(b))
    }

    /// Convenience constructor for a pair.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Tuple(vec![a, b])
    }

    /// Is this the unit value?
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Tuple(vs) if vs.is_empty())
    }

    /// Project component `i` (0-based) of a tuple value.
    pub fn project(&self, i: usize) -> Result<&Value, DataError> {
        match self {
            Value::Tuple(vs) => vs.get(i).ok_or_else(|| DataError::Shape {
                expected: format!("tuple with at least {} components", i + 1),
                got: self.to_string(),
            }),
            _ => Err(DataError::Shape {
                expected: "tuple".to_owned(),
                got: self.to_string(),
            }),
        }
    }

    /// Project along a path of component indices.
    pub fn project_path(&self, path: &[usize]) -> Result<&Value, DataError> {
        let mut cur = self;
        for &i in path {
            cur = cur.project(i)?;
        }
        Ok(cur)
    }

    /// View this value as a bag, if it is one.
    pub fn as_bag(&self) -> Result<&Bag, DataError> {
        match self {
            Value::Bag(b) => Ok(b),
            _ => Err(DataError::Shape {
                expected: "bag".to_owned(),
                got: self.to_string(),
            }),
        }
    }

    /// Consume this value as a bag, if it is one.
    pub fn into_bag(self) -> Result<Bag, DataError> {
        match self {
            Value::Bag(b) => Ok(b),
            other => Err(DataError::Shape {
                expected: "bag".to_owned(),
                got: other.to_string(),
            }),
        }
    }

    /// View this value as a base value, if it is one.
    pub fn as_base(&self) -> Result<&BaseValue, DataError> {
        match self {
            Value::Base(b) => Ok(b),
            _ => Err(DataError::Shape {
                expected: "base value".to_owned(),
                got: self.to_string(),
            }),
        }
    }

    /// View this value as a label, if it is one.
    pub fn as_label(&self) -> Result<&Label, DataError> {
        match self {
            Value::Label(l) => Ok(l),
            _ => Err(DataError::Shape {
                expected: "label".to_owned(),
                got: self.to_string(),
            }),
        }
    }

    /// View this value as a dictionary, if it is one.
    pub fn as_dict(&self) -> Result<&Dictionary, DataError> {
        match self {
            Value::Dict(d) => Ok(d),
            _ => Err(DataError::Shape {
                expected: "dictionary".to_owned(),
                got: self.to_string(),
            }),
        }
    }

    /// Infer the type of this value.
    ///
    /// Empty bags and dictionaries carry no element information; they are
    /// typed as `Bag(1)` / `L ↦ Bag(1)` and rely on the checker's structural
    /// compatibility (see [`Value::conforms_to`]) rather than exact equality.
    pub fn infer_type(&self) -> Type {
        match self {
            Value::Base(b) => Type::Base(b.base_type()),
            Value::Tuple(vs) => Type::Tuple(vs.iter().map(Value::infer_type).collect()),
            Value::Bag(b) => match b.iter().next() {
                Some((v, _)) => Type::bag(v.infer_type()),
                None => Type::bag(Type::unit()),
            },
            Value::Label(_) => Type::Label,
            Value::Dict(d) => match d.iter().find_map(|(_, bag)| bag.iter().next()) {
                Some((v, _)) => Type::dict(v.infer_type()),
                None => Type::dict(Type::unit()),
            },
        }
    }

    /// Does this value conform to `ty`? Empty bags conform to any bag type
    /// and empty dictionaries to any dictionary type.
    pub fn conforms_to(&self, ty: &Type) -> bool {
        match (self, ty) {
            (Value::Base(b), Type::Base(t)) => b.base_type() == *t,
            (Value::Tuple(vs), Type::Tuple(ts)) => {
                vs.len() == ts.len() && vs.iter().zip(ts).all(|(v, t)| v.conforms_to(t))
            }
            (Value::Bag(b), Type::Bag(elem)) => b.iter().all(|(v, _)| v.conforms_to(elem)),
            (Value::Label(_), Type::Label) => true,
            (Value::Dict(d), Type::Dict(elem)) => d
                .iter()
                .all(|(_, bag)| bag.iter().all(|(v, _)| v.conforms_to(elem))),
            _ => false,
        }
    }

    /// The "size" of the value in the step-counting sense used informally in
    /// §2.2: number of atomic constructors (base values, tuple nodes, bag
    /// entries weighted by |multiplicity|, labels, dictionary entries).
    pub fn atom_count(&self) -> u64 {
        match self {
            Value::Base(_) | Value::Label(_) => 1,
            Value::Tuple(vs) => 1 + vs.iter().map(Value::atom_count).sum::<u64>(),
            Value::Bag(b) => {
                1 + b
                    .iter()
                    .map(|(v, m)| v.atom_count() * m.unsigned_abs())
                    .sum::<u64>()
            }
            Value::Dict(d) => {
                1 + d
                    .iter()
                    .map(|(l, bag)| {
                        1 + l.args.iter().map(Value::atom_count).sum::<u64>()
                            + Value::Bag(bag.clone()).atom_count()
                    })
                    .sum::<u64>()
            }
        }
    }
}

impl From<BaseValue> for Value {
    fn from(b: BaseValue) -> Self {
        Value::Base(b)
    }
}

impl From<Bag> for Value {
    fn from(b: Bag) -> Self {
        Value::Bag(b)
    }
}

impl From<Dictionary> for Value {
    fn from(d: Dictionary) -> Self {
        Value::Dict(d)
    }
}

impl From<Label> for Value {
    fn from(l: Label) -> Self {
        Value::Label(l)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Base(b) => write!(f, "{b}"),
            Value::Tuple(vs) => {
                write!(f, "⟨")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "⟩")
            }
            Value::Bag(b) => write!(f, "{b}"),
            Value::Label(l) => write!(f, "{l}"),
            Value::Dict(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::Bag;
    use crate::base::BaseType;

    fn movie(name: &str, gen: &str, dir: &str) -> Value {
        Value::Tuple(vec![Value::str(name), Value::str(gen), Value::str(dir)])
    }

    #[test]
    fn project_and_paths() {
        let m = movie("Drive", "Drama", "Refn");
        assert_eq!(m.project(0).unwrap(), &Value::str("Drive"));
        assert_eq!(m.project(2).unwrap(), &Value::str("Refn"));
        assert!(m.project(3).is_err());
        let nested = Value::pair(m.clone(), Value::int(1));
        assert_eq!(nested.project_path(&[0, 1]).unwrap(), &Value::str("Drama"));
        assert!(Value::int(1).project(0).is_err());
    }

    #[test]
    fn infer_type_of_nested_values() {
        let m = movie("Drive", "Drama", "Refn");
        assert_eq!(
            m.infer_type(),
            Type::Tuple(vec![
                Type::Base(BaseType::Str),
                Type::Base(BaseType::Str),
                Type::Base(BaseType::Str)
            ])
        );
        let bag = Bag::from_values([m.clone()]);
        assert_eq!(Value::Bag(bag).infer_type(), Type::bag(m.infer_type()));
        assert_eq!(
            Value::Bag(Bag::empty()).infer_type(),
            Type::bag(Type::unit())
        );
    }

    #[test]
    fn conforms_to_allows_empty_bags_anywhere() {
        let ty = Type::bag(Type::pair(
            Type::Base(BaseType::Str),
            Type::bag(Type::Base(BaseType::Int)),
        ));
        let v = Value::Bag(Bag::from_values([Value::pair(
            Value::str("a"),
            Value::Bag(Bag::empty()),
        )]));
        assert!(v.conforms_to(&ty));
        assert!(Value::Bag(Bag::empty()).conforms_to(&ty));
        assert!(!Value::int(3).conforms_to(&ty));
    }

    #[test]
    fn unit_value_is_empty_tuple() {
        assert!(Value::unit().is_unit());
        assert_eq!(Value::unit().to_string(), "⟨⟩");
        assert!(Value::unit().conforms_to(&Type::unit()));
    }

    #[test]
    fn atom_count_weights_multiplicities() {
        let mut b = Bag::empty();
        b.insert(Value::int(1), 3);
        b.insert(Value::int(2), -2);
        // bag node (1) + 3×1 + 2×1 = 6
        assert_eq!(Value::Bag(b).atom_count(), 6);
    }

    #[test]
    fn display_nested() {
        let v = Value::pair(
            Value::str("a"),
            Value::Bag(Bag::from_values([Value::int(1)])),
        );
        assert_eq!(v.to_string(), "⟨\"a\", {1}⟩");
    }
}

#[cfg(test)]
mod error_display_tests {
    use crate::dict::Label;
    use crate::error::DataError;

    #[test]
    fn errors_render_usefully() {
        let e1 = DataError::UndefinedLabel {
            label: Label::atomic(7),
        };
        assert!(e1.to_string().contains("⟨ι7⟩"));
        let e2 = DataError::DictUnionConflict {
            label: Label::atomic(3),
        };
        assert!(e2.to_string().contains("conflict"));
        let e3 = DataError::Shape {
            expected: "bag".into(),
            got: "3".into(),
        };
        assert!(e3.to_string().contains("expected bag"));
    }
}
