//! `VidMap` — the id-keyed map that keeps the intern arena's live counts.
//!
//! [`crate::Bag`] and [`crate::Dictionary`] store their contents in a
//! `VidMap`: a thin wrapper over `BTreeMap<Vid, T>` whose *key set*
//! participates in arena reclamation. Every key insertion (and every map
//! clone — copy-on-write duplicates references) retains the key's arena
//! slot; every key removal (and the map's drop) releases it. When the last
//! reference to a slot disappears, the slot becomes collectible by
//! `intern::collect` — see the reclamation section of [`crate::intern`].
//!
//! The wrapper exposes the read API by [`Deref`]; all mutation goes through
//! the retain/release-aware methods below, so a key can never enter or
//! leave the map without the arena hearing about it. Values (`T`) are
//! ordinary owned data — for dictionaries they are [`crate::Bag`]s whose
//! own `VidMap` handles their elements, which is exactly how dropping an
//! interned value tree cascades releases through nesting levels.

use crate::intern::{self, Vid};
use serde::{Deserialize, Json, Serialize};
use std::collections::BTreeMap;
use std::ops::Deref;

/// A `BTreeMap<Vid, T>` that retains/releases arena slots as keys come and
/// go (including on clone and drop). Crate-internal: the public surface is
/// [`crate::Bag`] / [`crate::Dictionary`].
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct VidMap<T> {
    inner: BTreeMap<Vid, T>,
}

impl<T> VidMap<T> {
    /// The empty map.
    pub(crate) fn new() -> VidMap<T> {
        VidMap {
            inner: BTreeMap::new(),
        }
    }

    /// Insert, retaining the key if it was absent.
    pub(crate) fn insert(&mut self, key: Vid, value: T) -> Option<T> {
        let prev = self.inner.insert(key, value);
        if prev.is_none() {
            intern::retain(key);
        }
        prev
    }

    /// One-walk insert-or-update-or-remove: `merge` sees the current value
    /// (if any) and returns the new one, `None` meaning remove/skip. The
    /// hot path of bag `⊎` — a `get_mut` + `insert` pair would walk the
    /// tree twice for the fresh keys streams are made of.
    pub(crate) fn upsert_with<E>(
        &mut self,
        key: Vid,
        merge: impl FnOnce(Option<&T>) -> Result<Option<T>, E>,
    ) -> Result<(), E> {
        match self.inner.entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                if let Some(v) = merge(None)? {
                    intern::retain(key);
                    e.insert(v);
                }
            }
            std::collections::btree_map::Entry::Occupied(mut e) => match merge(Some(e.get()))? {
                Some(v) => *e.get_mut() = v,
                None => {
                    e.remove();
                    intern::release(key);
                }
            },
        }
        Ok(())
    }

    /// The entry for `key`, default-inserting (and retaining) when absent.
    pub(crate) fn or_default_mut(&mut self, key: Vid) -> &mut T
    where
        T: Default,
    {
        self.inner.entry(key).or_insert_with(|| {
            intern::retain(key);
            T::default()
        })
    }

    /// Keep only entries whose key/value satisfy `keep`, releasing the rest.
    pub(crate) fn retain_entries<F: FnMut(&Vid, &mut T) -> bool>(&mut self, mut keep: F) {
        self.inner.retain(|k, v| {
            let kept = keep(k, v);
            if !kept {
                intern::release(*k);
            }
            kept
        });
    }
}

impl<T> Deref for VidMap<T> {
    type Target = BTreeMap<Vid, T>;

    fn deref(&self) -> &BTreeMap<Vid, T> {
        &self.inner
    }
}

impl<T> Default for VidMap<T> {
    fn default() -> VidMap<T> {
        VidMap::new()
    }
}

impl<T: Clone> Clone for VidMap<T> {
    fn clone(&self) -> VidMap<T> {
        for key in self.inner.keys() {
            intern::retain(*key);
        }
        VidMap {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for VidMap<T> {
    fn drop(&mut self) {
        for key in self.inner.keys() {
            intern::release(*key);
        }
    }
}

impl<T> FromIterator<(Vid, T)> for VidMap<T> {
    /// Bulk construction; duplicate keys keep the last value (and are
    /// retained once, like the underlying `BTreeMap` semantics).
    fn from_iter<I: IntoIterator<Item = (Vid, T)>>(iter: I) -> VidMap<T> {
        let inner: BTreeMap<Vid, T> = iter.into_iter().collect();
        for key in inner.keys() {
            intern::retain(*key);
        }
        VidMap { inner }
    }
}

impl<T: Serialize> Serialize for VidMap<T> {
    fn to_json(&self) -> Json {
        self.inner.to_json()
    }
}

impl<T: Deserialize> Deserialize for VidMap<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn probe(i: usize) -> Vid {
        intern::intern(Value::str(format!("gc-livemap-test-{i:04}")))
    }

    #[test]
    fn insert_upsert_remove_balance_out() {
        let mut m: VidMap<i64> = VidMap::new();
        let k = probe(0);
        assert_eq!(m.insert(k, 1), None);
        // Overwriting insert must not double-retain.
        assert_eq!(m.insert(k, 2), Some(1));
        // Removal through the one-walk upsert.
        m.upsert_with::<()>(k, |cur| {
            assert_eq!(cur, Some(&2));
            Ok(None)
        })
        .unwrap();
        assert!(m.is_empty());
        // Upserting a missing key with `None` neither inserts nor retains.
        m.upsert_with::<()>(k, |cur| {
            assert_eq!(cur, None);
            Ok(None)
        })
        .unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn clone_retains_and_drop_releases() {
        let mut m: VidMap<i64> = VidMap::new();
        let k = probe(1);
        m.insert(k, 7);
        let c = m.clone();
        drop(m);
        // The clone still protects the slot.
        assert_eq!(c.get(&k), Some(&7));
        assert_eq!(k.value(), &Value::str("gc-livemap-test-0001"));
        drop(c);
    }

    #[test]
    fn or_default_retains_once() {
        let mut m: VidMap<i64> = VidMap::new();
        let k = probe(2);
        *m.or_default_mut(k) += 5;
        *m.or_default_mut(k) += 5;
        assert_eq!(m.get(&k), Some(&10));
        // Balanced: one retain from or_default_mut, one release here.
        m.retain_entries(|_, _| false);
        assert!(m.is_empty());
    }

    #[test]
    fn upsert_with_balance_is_observable_by_collection() {
        // The one-walk invariant of `upsert_with`: vacant + `Some` retains
        // exactly once, occupied + `Some` retains zero times, occupied +
        // `None` releases exactly once. The balance is observable through
        // actual reclamation — an over-retain would keep the slot alive
        // past the final release (failing the lookup assertion), an
        // under-retain would underflow the live count (debug assertion).
        let _serial = intern::gc_test_serial();
        let v = Value::str("gc-livemap-upsert-balance");
        let k = intern::intern(v.clone());
        let mut m: VidMap<i64> = VidMap::new();
        m.upsert_with::<()>(k, |cur| {
            assert!(cur.is_none());
            Ok(Some(1))
        })
        .unwrap();
        // In-place updates walk the occupied entry: no second retain…
        for _ in 0..3 {
            m.upsert_with::<()>(k, |cur| Ok(cur.map(|c| c + 1)))
                .unwrap();
        }
        assert_eq!(m.get(&k), Some(&4));
        // …so one removal brings the count back to zero.
        m.upsert_with::<()>(k, |_| Ok(None)).unwrap();
        assert!(m.is_empty());
        intern::collect_now();
        assert!(
            intern::lookup(&v).is_none(),
            "balanced upserts must leave the slot collectible"
        );
    }

    #[test]
    fn upsert_inserted_keys_are_released_on_map_drop() {
        let _serial = intern::gc_test_serial();
        let v = Value::str("gc-livemap-upsert-drop");
        let mut m: VidMap<i64> = VidMap::new();
        m.upsert_with::<()>(intern::intern(v.clone()), |_| Ok(Some(1)))
            .unwrap();
        drop(m);
        intern::collect_now();
        assert!(
            intern::lookup(&v).is_none(),
            "drop must release keys inserted through upsert_with"
        );
    }

    #[test]
    fn retain_entries_releases_dropped_keys() {
        let mut m: VidMap<i64> = VidMap::new();
        let keep = probe(3);
        let toss = probe(4);
        m.insert(keep, 1);
        m.insert(toss, 2);
        m.retain_entries(|k, _| *k == keep);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&keep));
    }
}
