//! The id-keyed containers that keep the intern arena's live counts:
//! [`VidMap`] (tree tier) and [`SortedVidRun`] (columnar small tier).
//!
//! [`crate::Bag`] and [`crate::Dictionary`] store their contents in these
//! containers, whose *key sets* participate in arena reclamation. Every key
//! insertion (and every container clone — copy-on-write duplicates
//! references) retains the key's arena slot; every key removal (and the
//! container's drop) releases it. When the last reference to a slot
//! disappears, the slot becomes collectible by `intern::collect` — see the
//! reclamation section of [`crate::intern`].
//!
//! `VidMap` wraps a `BTreeMap<Vid, T>` and exposes the read API by
//! [`Deref`]; all mutation goes through the retain/release-aware methods
//! below, so a key can never enter or leave the map without the arena
//! hearing about it. Values (`T`) are ordinary owned data — for
//! dictionaries they are [`crate::Bag`]s whose own containers handle their
//! elements, which is exactly how dropping an interned value tree cascades
//! releases through nesting levels.
//!
//! `SortedVidRun` holds a strictly sorted `Vec<(Vid, i64)>` under the same
//! liveness contract, but its bulk mutation is *linear merges over sorted
//! runs*: arena traffic is proportional to the key-set delta (fresh keys
//! retained, cancelled keys released in one batched pass), never to the
//! run length. The two types share a transfer seam
//! ([`SortedVidRun::into_retained_pairs`] /
//! [`VidMap::from_retained_sorted`]) so a run can promote into a map with
//! zero retain/release churn — the key carries its retain across tiers.

use crate::error::DataError;
use crate::intern::{self, Vid};
use serde::{Deserialize, Json, Serialize};
use std::collections::BTreeMap;
use std::ops::Deref;

/// A `BTreeMap<Vid, T>` that retains/releases arena slots as keys come and
/// go (including on clone and drop). Crate-internal: the public surface is
/// [`crate::Bag`] / [`crate::Dictionary`].
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct VidMap<T> {
    inner: BTreeMap<Vid, T>,
}

impl<T> VidMap<T> {
    /// The empty map.
    pub(crate) fn new() -> VidMap<T> {
        VidMap {
            inner: BTreeMap::new(),
        }
    }

    /// Insert, retaining the key if it was absent.
    pub(crate) fn insert(&mut self, key: Vid, value: T) -> Option<T> {
        let prev = self.inner.insert(key, value);
        if prev.is_none() {
            intern::retain(key);
        }
        prev
    }

    /// One-walk insert-or-update-or-remove: `merge` sees the current value
    /// (if any) and returns the new one, `None` meaning remove/skip. The
    /// hot path of bag `⊎` — a `get_mut` + `insert` pair would walk the
    /// tree twice for the fresh keys streams are made of.
    pub(crate) fn upsert_with<E>(
        &mut self,
        key: Vid,
        merge: impl FnOnce(Option<&T>) -> Result<Option<T>, E>,
    ) -> Result<(), E> {
        match self.inner.entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                if let Some(v) = merge(None)? {
                    intern::retain(key);
                    e.insert(v);
                }
            }
            std::collections::btree_map::Entry::Occupied(mut e) => match merge(Some(e.get()))? {
                Some(v) => *e.get_mut() = v,
                None => {
                    e.remove();
                    intern::release(key);
                }
            },
        }
        Ok(())
    }

    /// The entry for `key`, default-inserting (and retaining) when absent.
    pub(crate) fn or_default_mut(&mut self, key: Vid) -> &mut T
    where
        T: Default,
    {
        self.inner.entry(key).or_insert_with(|| {
            intern::retain(key);
            T::default()
        })
    }

    /// Keep only entries whose key/value satisfy `keep`, releasing the rest.
    pub(crate) fn retain_entries<F: FnMut(&Vid, &mut T) -> bool>(&mut self, mut keep: F) {
        self.inner.retain(|k, v| {
            let kept = keep(k, v);
            if !kept {
                intern::release(*k);
            }
            kept
        });
    }

    /// Build from an *already-retained*, strictly key-sorted pair vec:
    /// ownership of the keys' retains transfers in, so construction does no
    /// arena traffic at all. The Small→Tree promotion seam of the two-tier
    /// [`crate::Bag`] — a key keeps the one retain it already owns while
    /// its container representation changes underneath it.
    pub(crate) fn from_retained_sorted(pairs: Vec<(Vid, T)>) -> VidMap<T> {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "transferred pairs must be strictly key-sorted"
        );
        VidMap {
            inner: pairs.into_iter().collect(),
        }
    }
}

impl<T> Deref for VidMap<T> {
    type Target = BTreeMap<Vid, T>;

    fn deref(&self) -> &BTreeMap<Vid, T> {
        &self.inner
    }
}

impl<T> Default for VidMap<T> {
    fn default() -> VidMap<T> {
        VidMap::new()
    }
}

impl<T: Clone> Clone for VidMap<T> {
    fn clone(&self) -> VidMap<T> {
        for key in self.inner.keys() {
            intern::retain(*key);
        }
        VidMap {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for VidMap<T> {
    fn drop(&mut self) {
        for key in self.inner.keys() {
            intern::release(*key);
        }
    }
}

impl<T> FromIterator<(Vid, T)> for VidMap<T> {
    /// Bulk construction; duplicate keys keep the last value (and are
    /// retained once, like the underlying `BTreeMap` semantics).
    fn from_iter<I: IntoIterator<Item = (Vid, T)>>(iter: I) -> VidMap<T> {
        let inner: BTreeMap<Vid, T> = iter.into_iter().collect();
        for key in inner.keys() {
            intern::retain(*key);
        }
        VidMap { inner }
    }
}

impl<T: Serialize> Serialize for VidMap<T> {
    fn to_json(&self) -> Json {
        self.inner.to_json()
    }
}

impl<T: Deserialize> Deserialize for VidMap<T> {}

/// Canonical-form debug check shared by the run constructors: strictly
/// ascending keys, no zero multiplicities.
fn debug_assert_canonical(pairs: &[(Vid, i64)]) {
    debug_assert!(
        pairs.windows(2).all(|w| w[0].0 < w[1].0),
        "run keys must be strictly sorted"
    );
    debug_assert!(
        pairs.iter().all(|&(_, m)| m != 0),
        "run must hold no zero multiplicities"
    );
}

/// A strictly sorted `(Vid, multiplicity)` run — the columnar small tier of
/// [`crate::Bag`] — whose key set owns arena retains under exactly the
/// contract [`VidMap`]'s does: one retain per distinct key, released when
/// the key leaves the run or the run drops.
///
/// Canonical-form invariants (checked in debug builds): keys strictly
/// ascending, no zero multiplicities. Bulk mutation is a linear merge over
/// sorted runs; arena traffic is proportional to the *key-set delta*
/// (fresh keys retained, cancelled keys released), never to the run
/// length — the batched-retain seam the two-tier `Bag` relies on to claw
/// back the per-node liveness tax.
#[derive(Debug, Default)]
pub(crate) struct SortedVidRun {
    pairs: Vec<(Vid, i64)>,
}

impl SortedVidRun {
    /// The empty run.
    pub(crate) fn new() -> SortedVidRun {
        SortedVidRun { pairs: Vec::new() }
    }

    /// Take ownership of a canonical (strictly sorted, zero-free) pair vec
    /// whose keys are *not yet* retained, retaining every key in one dense
    /// pass — the bulk-construction half of the batched-retain seam.
    pub(crate) fn from_unretained(pairs: Vec<(Vid, i64)>) -> SortedVidRun {
        debug_assert_canonical(&pairs);
        for &(id, _) in &pairs {
            intern::retain(id);
        }
        SortedVidRun { pairs }
    }

    /// Dissolve into the raw pair vec *without releasing*: the caller takes
    /// ownership of one retain per key (see
    /// [`VidMap::from_retained_sorted`], the promotion seam).
    pub(crate) fn into_retained_pairs(mut self) -> Vec<(Vid, i64)> {
        // `Drop` then runs over the emptied vec and releases nothing.
        std::mem::take(&mut self.pairs)
    }

    /// Number of distinct keys.
    pub(crate) fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Is the run empty?
    pub(crate) fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The canonical pair slice.
    pub(crate) fn as_slice(&self) -> &[(Vid, i64)] {
        &self.pairs
    }

    /// The multiplicity of `id`, if present (binary search — `O(log n)`
    /// integer-rank compares).
    pub(crate) fn get(&self, id: Vid) -> Option<i64> {
        self.pairs
            .binary_search_by(|&(k, _)| k.cmp(&id))
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// Point upsert: add `mult` (non-zero) to `id`'s multiplicity, removing
    /// the entry (and releasing the key) on cancellation, inserting (and
    /// retaining) on a fresh key. Overflow leaves the run unchanged.
    pub(crate) fn insert(&mut self, id: Vid, mult: i64) -> Result<(), DataError> {
        debug_assert!(mult != 0, "zero multiplicities never enter a run");
        match self.pairs.binary_search_by(|&(k, _)| k.cmp(&id)) {
            Ok(i) => {
                let new = self.pairs[i]
                    .1
                    .checked_add(mult)
                    .ok_or(DataError::Overflow { op: "⊎" })?;
                if new == 0 {
                    self.pairs.remove(i);
                    intern::release(id);
                } else {
                    self.pairs[i].1 = new;
                }
            }
            Err(i) => {
                intern::retain(id);
                self.pairs.insert(i, (id, mult));
            }
        }
        Ok(())
    }

    /// Linear-merge `self ⊎= k · other` over the sorted runs (`k ≠ 0`,
    /// `other` strictly key-sorted and zero-free). Keys present on both
    /// sides keep the retain they already own; cancelled keys are released
    /// and fresh keys retained — the only arena traffic of the whole merge.
    ///
    /// On multiplicity overflow the merge stops, every still-owned entry is
    /// kept (the run stays canonical and liveness-consistent, merely
    /// partially merged — matching the partial-application semantics of the
    /// per-key tree path) and the error is surfaced.
    pub(crate) fn merge_scaled<I>(&mut self, other: I, k: i64) -> Result<(), DataError>
    where
        I: Iterator<Item = (Vid, i64)>,
    {
        debug_assert!(k != 0, "k = 0 is the caller's early-out");
        let mut b = other.peekable();
        let extra = {
            let (lo, hi) = b.size_hint();
            hi.unwrap_or(lo)
        };
        let old = std::mem::take(&mut self.pairs);
        let mut out: Vec<(Vid, i64)> = Vec::with_capacity(old.len() + extra);
        let mut cancelled: Vec<Vid> = Vec::new();
        let mut a = old.into_iter().peekable();
        let mut failed: Option<DataError> = None;
        while failed.is_none() {
            let step = match (a.peek(), b.peek()) {
                (Some(&(ka, _)), Some(&(kb, _))) => ka.cmp(&kb),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => break,
            };
            match step {
                std::cmp::Ordering::Less => out.push(a.next().expect("peeked")),
                std::cmp::Ordering::Greater => {
                    let (id, m) = b.next().expect("peeked");
                    debug_assert!(m != 0, "merged runs are zero-free");
                    match m.checked_mul(k) {
                        Some(scaled) => {
                            intern::retain(id);
                            out.push((id, scaled));
                        }
                        None => failed = Some(DataError::Overflow { op: "scaled ⊎" }),
                    }
                }
                std::cmp::Ordering::Equal => {
                    let (id, ma) = a.next().expect("peeked");
                    let (_, mb) = b.next().expect("peeked");
                    match mb.checked_mul(k) {
                        None => {
                            failed = Some(DataError::Overflow { op: "scaled ⊎" });
                            out.push((id, ma));
                        }
                        Some(scaled) => match ma.checked_add(scaled) {
                            Some(0) => cancelled.push(id),
                            Some(sum) => out.push((id, sum)),
                            None => {
                                failed = Some(DataError::Overflow { op: "⊎" });
                                out.push((id, ma));
                            }
                        },
                    }
                }
            }
        }
        // Flush the remaining owned entries (on failure: everything after
        // the overflow point, untouched) so no retain is orphaned.
        out.extend(a);
        for id in cancelled {
            intern::release(id);
        }
        debug_assert_canonical(&out);
        self.pairs = out;
        match failed {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Clone for SortedVidRun {
    /// One dense retain pass plus a flat memcpy — no per-node allocation.
    fn clone(&self) -> SortedVidRun {
        for &(id, _) in &self.pairs {
            intern::retain(id);
        }
        SortedVidRun {
            pairs: self.pairs.clone(),
        }
    }
}

impl Drop for SortedVidRun {
    fn drop(&mut self) {
        for &(id, _) in &self.pairs {
            intern::release(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn probe(i: usize) -> Vid {
        intern::intern(Value::str(format!("gc-livemap-test-{i:04}")))
    }

    #[test]
    fn insert_upsert_remove_balance_out() {
        let mut m: VidMap<i64> = VidMap::new();
        let k = probe(0);
        assert_eq!(m.insert(k, 1), None);
        // Overwriting insert must not double-retain.
        assert_eq!(m.insert(k, 2), Some(1));
        // Removal through the one-walk upsert.
        m.upsert_with::<()>(k, |cur| {
            assert_eq!(cur, Some(&2));
            Ok(None)
        })
        .unwrap();
        assert!(m.is_empty());
        // Upserting a missing key with `None` neither inserts nor retains.
        m.upsert_with::<()>(k, |cur| {
            assert_eq!(cur, None);
            Ok(None)
        })
        .unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn clone_retains_and_drop_releases() {
        let mut m: VidMap<i64> = VidMap::new();
        let k = probe(1);
        m.insert(k, 7);
        let c = m.clone();
        drop(m);
        // The clone still protects the slot.
        assert_eq!(c.get(&k), Some(&7));
        assert_eq!(k.value(), &Value::str("gc-livemap-test-0001"));
        drop(c);
    }

    #[test]
    fn or_default_retains_once() {
        let mut m: VidMap<i64> = VidMap::new();
        let k = probe(2);
        *m.or_default_mut(k) += 5;
        *m.or_default_mut(k) += 5;
        assert_eq!(m.get(&k), Some(&10));
        // Balanced: one retain from or_default_mut, one release here.
        m.retain_entries(|_, _| false);
        assert!(m.is_empty());
    }

    #[test]
    fn upsert_with_balance_is_observable_by_collection() {
        // The one-walk invariant of `upsert_with`: vacant + `Some` retains
        // exactly once, occupied + `Some` retains zero times, occupied +
        // `None` releases exactly once. The balance is observable through
        // actual reclamation — an over-retain would keep the slot alive
        // past the final release (failing the lookup assertion), an
        // under-retain would underflow the live count (debug assertion).
        let _serial = intern::gc_test_serial();
        let v = Value::str("gc-livemap-upsert-balance");
        let k = intern::intern(v.clone());
        let mut m: VidMap<i64> = VidMap::new();
        m.upsert_with::<()>(k, |cur| {
            assert!(cur.is_none());
            Ok(Some(1))
        })
        .unwrap();
        // In-place updates walk the occupied entry: no second retain…
        for _ in 0..3 {
            m.upsert_with::<()>(k, |cur| Ok(cur.map(|c| c + 1)))
                .unwrap();
        }
        assert_eq!(m.get(&k), Some(&4));
        // …so one removal brings the count back to zero.
        m.upsert_with::<()>(k, |_| Ok(None)).unwrap();
        assert!(m.is_empty());
        intern::collect_now();
        assert!(
            intern::lookup(&v).is_none(),
            "balanced upserts must leave the slot collectible"
        );
    }

    #[test]
    fn upsert_inserted_keys_are_released_on_map_drop() {
        let _serial = intern::gc_test_serial();
        let v = Value::str("gc-livemap-upsert-drop");
        let mut m: VidMap<i64> = VidMap::new();
        m.upsert_with::<()>(intern::intern(v.clone()), |_| Ok(Some(1)))
            .unwrap();
        drop(m);
        intern::collect_now();
        assert!(
            intern::lookup(&v).is_none(),
            "drop must release keys inserted through upsert_with"
        );
    }

    #[test]
    fn run_merges_are_canonical_and_cancel() {
        let mut ids: Vec<Vid> = (10..16).map(probe).collect();
        ids.sort();
        let mut run = SortedVidRun::from_unretained(ids.iter().map(|&id| (id, 2)).collect());
        assert_eq!(run.len(), 6);
        // `⊎ -2·(each key once)` cancels every entry in one linear pass.
        run.merge_scaled(ids.iter().map(|&id| (id, 1)), -2).unwrap();
        assert!(run.is_empty());
        // Point inserts keep strict sortedness wherever they splice in.
        run.insert(ids[3], 5).unwrap();
        run.insert(ids[1], 1).unwrap();
        assert_eq!(run.as_slice(), &[(ids[1], 1), (ids[3], 5)]);
        assert_eq!(run.get(ids[3]), Some(5));
        assert_eq!(run.get(ids[0]), None);
        // A scaled merge interleaves fresh keys among owned ones.
        run.merge_scaled([(ids[0], 1), (ids[2], 1)].into_iter(), 3)
            .unwrap();
        assert_eq!(
            run.as_slice(),
            &[(ids[0], 3), (ids[1], 1), (ids[2], 3), (ids[3], 5)]
        );
    }

    #[test]
    fn run_liveness_transfers_across_the_promotion_seam() {
        let _serial = intern::gc_test_serial();
        let vals: Vec<Value> = (0..4)
            .map(|i| Value::str(format!("gc-run-seam-{i}")))
            .collect();
        let mut ids: Vec<Vid> = vals.iter().map(|v| intern::intern(v.clone())).collect();
        ids.sort();
        let run = SortedVidRun::from_unretained(ids.iter().map(|&id| (id, 1)).collect());
        // Promotion: the run's retains transfer into the map wholesale.
        let map: VidMap<i64> = VidMap::from_retained_sorted(run.into_retained_pairs());
        intern::collect_now();
        for v in &vals {
            assert!(
                intern::lookup(v).is_some(),
                "the transferred retain must survive collection"
            );
        }
        drop(map);
        intern::collect_now();
        for v in &vals {
            assert!(
                intern::lookup(v).is_none(),
                "dropping the map must release the transferred retains"
            );
        }
    }

    #[test]
    fn run_merge_overflow_surfaces_and_keeps_owned_entries() {
        let mut ids: Vec<Vid> = (20..24).map(probe).collect();
        ids.sort();
        let mut run = SortedVidRun::from_unretained(vec![(ids[0], 1), (ids[1], i64::MAX)]);
        let err = run
            .merge_scaled([(ids[1], 1), (ids[2], 5)].into_iter(), 1)
            .unwrap_err();
        assert_eq!(err, DataError::Overflow { op: "⊎" });
        // The overflowing entry keeps its old multiplicity; entries past
        // the failure point never enter; the run stays canonical.
        assert_eq!(run.get(ids[0]), Some(1));
        assert_eq!(run.get(ids[1]), Some(i64::MAX));
        assert_eq!(run.get(ids[2]), None);
        let err = run
            .merge_scaled([(ids[3], i64::MAX)].into_iter(), 2)
            .unwrap_err();
        assert_eq!(err, DataError::Overflow { op: "scaled ⊎" });
        assert_eq!(run.get(ids[3]), None);
    }

    #[test]
    fn retain_entries_releases_dropped_keys() {
        let mut m: VidMap<i64> = VidMap::new();
        let keep = probe(3);
        let toss = probe(4);
        m.insert(keep, 1);
        m.insert(toss, 2);
        m.retain_entries(|k, _| *k == keep);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&keep));
    }
}
