//! Nested relational types.
//!
//! The paper's type grammar (§3) is
//!
//! ```text
//! A, B, C ::= 1 | Base | A × B | Bag(C)
//! ```
//!
//! extended in §5 with the label type `L` and label dictionaries
//! `L ↦ Bag(B)` for the shredding transformation. We generalize binary
//! products to n-ary tuples (`1` is the 0-ary tuple type, binary `×` is the
//! 2-ary case); this is definable in the paper's calculus by nesting pairs
//! and keeps example schemas flat and readable.

use crate::base::BaseType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A type of the (label-extended) nested relational calculus.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Type {
    /// Primitive type from the database domain.
    Base(BaseType),
    /// n-ary tuple type; `Tuple(vec![])` is the unit type `1`.
    Tuple(Vec<Type>),
    /// `Bag(C)` — generalized bags with integer multiplicities.
    Bag(Box<Type>),
    /// The label type `L` introduced by shredding (§5.1).
    Label,
    /// A label dictionary `L ↦ Bag(B)`; the payload is the *element* type `B`.
    Dict(Box<Type>),
}

impl Type {
    /// The unit type `1` (the type of the 0-ary tuple `⟨⟩`).
    pub fn unit() -> Type {
        Type::Tuple(vec![])
    }

    /// `Bag(1)` — the type of predicate results (booleans are simulated by
    /// `sng(⟨⟩)` = true and `∅` = false, §3).
    pub fn bool_bag() -> Type {
        Type::bag(Type::unit())
    }

    /// Convenience constructor for `Bag(t)`.
    pub fn bag(t: Type) -> Type {
        Type::Bag(Box::new(t))
    }

    /// Convenience constructor for `L ↦ Bag(t)`.
    pub fn dict(elem: Type) -> Type {
        Type::Dict(Box::new(elem))
    }

    /// Convenience constructor for a pair type `a × b`.
    pub fn pair(a: Type, b: Type) -> Type {
        Type::Tuple(vec![a, b])
    }

    /// Is this the unit type `1`?
    pub fn is_unit(&self) -> bool {
        matches!(self, Type::Tuple(ts) if ts.is_empty())
    }

    /// Is this a `TBase` type — a (nested) tuple type with components of only
    /// `Base` type (§3)? Predicates may only inspect such values.
    pub fn is_tbase(&self) -> bool {
        match self {
            Type::Base(_) => true,
            Type::Tuple(ts) => ts.iter().all(Type::is_tbase),
            Type::Bag(_) | Type::Label | Type::Dict(_) => false,
        }
    }

    /// Is this type *flat*, i.e. free of bag, label and dictionary types?
    /// (Same as `TBase`; kept as a separate name for call-site clarity.)
    pub fn is_flat(&self) -> bool {
        self.is_tbase()
    }

    /// The element type of a bag type, if this is one.
    pub fn bag_elem(&self) -> Option<&Type> {
        match self {
            Type::Bag(t) => Some(t),
            _ => None,
        }
    }

    /// The nesting depth of the type: the maximum number of `Bag`
    /// constructors along any path. `Base` and `1` have depth 0.
    ///
    /// The cost domains of §4.2 attach one cardinality per nesting level;
    /// this is the number of such levels.
    pub fn nesting_depth(&self) -> usize {
        match self {
            Type::Base(_) | Type::Label => 0,
            Type::Tuple(ts) => ts.iter().map(Type::nesting_depth).max().unwrap_or(0),
            Type::Bag(t) => 1 + t.nesting_depth(),
            Type::Dict(t) => 1 + t.nesting_depth(),
        }
    }

    /// Does this type mention a bag anywhere (so values of it may need
    /// shredding)?
    pub fn contains_bag(&self) -> bool {
        match self {
            Type::Base(_) | Type::Label => false,
            Type::Tuple(ts) => ts.iter().any(Type::contains_bag),
            Type::Bag(_) | Type::Dict(_) => true,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Base(b) => write!(f, "{b}"),
            Type::Tuple(ts) if ts.is_empty() => write!(f, "1"),
            Type::Tuple(ts) => {
                write!(f, "⟨")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " × ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "⟩")
            }
            Type::Bag(t) => write!(f, "Bag({t})"),
            Type::Label => write!(f, "L"),
            Type::Dict(t) => write!(f, "(L ↦ Bag({t}))"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_type() -> Type {
        // Movie(name, gen, dir) from the motivating example (§2).
        Type::Tuple(vec![
            Type::Base(BaseType::Str),
            Type::Base(BaseType::Str),
            Type::Base(BaseType::Str),
        ])
    }

    #[test]
    fn unit_is_empty_tuple() {
        assert!(Type::unit().is_unit());
        assert!(!Type::Base(BaseType::Int).is_unit());
        assert_eq!(Type::unit().to_string(), "1");
    }

    #[test]
    fn tbase_accepts_nested_base_tuples_only() {
        assert!(movie_type().is_tbase());
        assert!(Type::Tuple(vec![movie_type(), Type::unit()]).is_tbase());
        assert!(!Type::bag(movie_type()).is_tbase());
        assert!(!Type::Tuple(vec![Type::Label]).is_tbase());
        assert!(!Type::Tuple(vec![Type::bag(Type::unit())]).is_tbase());
    }

    #[test]
    fn nesting_depth_counts_bag_levels() {
        assert_eq!(movie_type().nesting_depth(), 0);
        assert_eq!(Type::bag(movie_type()).nesting_depth(), 1);
        // related : Bag(name × Bag(name)) has depth 2.
        let related = Type::bag(Type::pair(
            Type::Base(BaseType::Str),
            Type::bag(Type::Base(BaseType::Str)),
        ));
        assert_eq!(related.nesting_depth(), 2);
    }

    #[test]
    fn contains_bag_detects_nested_bags() {
        assert!(!movie_type().contains_bag());
        assert!(Type::bag(movie_type()).contains_bag());
        assert!(
            Type::Tuple(vec![Type::Base(BaseType::Int), Type::bag(Type::unit())]).contains_bag()
        );
        assert!(Type::dict(Type::unit()).contains_bag());
    }

    #[test]
    fn display_round_trips_shapes() {
        let t = Type::bag(Type::pair(
            Type::Base(BaseType::Str),
            Type::bag(Type::Base(BaseType::Int)),
        ));
        assert_eq!(t.to_string(), "Bag(⟨Str × Bag(Int)⟩)");
        assert_eq!(Type::dict(Type::unit()).to_string(), "(L ↦ Bag(1))");
        assert_eq!(Type::bool_bag().to_string(), "Bag(1)");
    }

    #[test]
    fn bag_elem_projects() {
        let t = Type::bag(Type::unit());
        assert_eq!(t.bag_elem(), Some(&Type::unit()));
        assert_eq!(Type::Label.bag_elem(), None);
    }
}
