//! Primitive (`Base`) values and types of the database domain.
//!
//! The paper treats `Base` as an abstract domain of atomic values over which
//! predicates may compare (§3: predicates act only on tuples of basic values —
//! the "positivity" restriction). We instantiate it with booleans, 64-bit
//! integers and strings, which is enough for every example and workload in
//! the paper while keeping values totally ordered.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of a primitive database value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BaseType {
    /// Booleans (used by workloads; predicates themselves live outside bags).
    Bool,
    /// 64-bit signed integers.
    Int,
    /// UTF-8 strings.
    Str,
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseType::Bool => write!(f, "Bool"),
            BaseType::Int => write!(f, "Int"),
            BaseType::Str => write!(f, "Str"),
        }
    }
}

/// A primitive database value.
///
/// The derived [`Ord`] gives the canonical total order used to keep bag
/// contents sorted and deterministic.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BaseValue {
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A string.
    Str(String),
}

impl BaseValue {
    /// The [`BaseType`] of this value.
    pub fn base_type(&self) -> BaseType {
        match self {
            BaseValue::Bool(_) => BaseType::Bool,
            BaseValue::Int(_) => BaseType::Int,
            BaseValue::Str(_) => BaseType::Str,
        }
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        BaseValue::Str(s.into())
    }
}

impl From<i64> for BaseValue {
    fn from(v: i64) -> Self {
        BaseValue::Int(v)
    }
}

impl From<bool> for BaseValue {
    fn from(v: bool) -> Self {
        BaseValue::Bool(v)
    }
}

impl From<&str> for BaseValue {
    fn from(v: &str) -> Self {
        BaseValue::Str(v.to_owned())
    }
}

impl From<String> for BaseValue {
    fn from(v: String) -> Self {
        BaseValue::Str(v)
    }
}

impl fmt::Display for BaseValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseValue::Bool(b) => write!(f, "{b}"),
            BaseValue::Int(i) => write!(f, "{i}"),
            BaseValue::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_type_of_values() {
        assert_eq!(BaseValue::Bool(true).base_type(), BaseType::Bool);
        assert_eq!(BaseValue::Int(3).base_type(), BaseType::Int);
        assert_eq!(BaseValue::str("x").base_type(), BaseType::Str);
    }

    #[test]
    fn ordering_is_total_within_and_across_variants() {
        // Variant order: Bool < Int < Str, then payload order.
        assert!(BaseValue::Bool(false) < BaseValue::Bool(true));
        assert!(BaseValue::Bool(true) < BaseValue::Int(i64::MIN));
        assert!(BaseValue::Int(1) < BaseValue::Int(2));
        assert!(BaseValue::Int(i64::MAX) < BaseValue::str(""));
        assert!(BaseValue::str("a") < BaseValue::str("b"));
    }

    #[test]
    fn from_impls() {
        assert_eq!(BaseValue::from(7), BaseValue::Int(7));
        assert_eq!(BaseValue::from(true), BaseValue::Bool(true));
        assert_eq!(BaseValue::from("hi"), BaseValue::Str("hi".into()));
    }

    #[test]
    fn display_formats() {
        assert_eq!(BaseValue::Int(-4).to_string(), "-4");
        assert_eq!(BaseValue::Bool(true).to_string(), "true");
        assert_eq!(BaseValue::str("a b").to_string(), "\"a b\"");
        assert_eq!(BaseType::Str.to_string(), "Str");
    }
}
