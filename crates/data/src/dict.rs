//! Labels and label dictionaries (§5.1–5.2, Appendix C.2–C.3).
//!
//! Shredding replaces every inner bag by a **label** and separately maintains
//! a **dictionary** mapping labels to (flat) bag definitions. Two ways of
//! combining dictionaries exist and must not be conflated:
//!
//! * **addition `⊎`** — pointwise bag addition; this is how *updates* reach
//!   inner bags ("deep updates" become plain bag union on a definition);
//! * **label union `∪`** — support union; definitions of labels present on
//!   both sides must *agree*, otherwise the operation errors. `∪` is what the
//!   shredded form of `e₁ ⊎ e₂` uses on contexts and can never modify a
//!   definition.
//!
//! The support set is explicit: a label defined to be the empty bag
//! (`[l ↦ ∅]`) is different from an undefined label (`[]`).
//!
//! Since the hash-consing refactor the support is keyed by interned label
//! ids ([`Vid`]s resolving to [`Value::Label`]): membership tests and entry
//! merges compare a `u32`, and the definition-agreement check of `∪` is a
//! shallow id-keyed bag comparison. Label-level accessors resolve on read.

use crate::bag::Bag;
use crate::error::DataError;
use crate::intern::{self, Vid};
use crate::livemap::VidMap;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A label `⟨ι, ε⟩`: a static index `ι` identifying the `sng` occurrence (or
/// input inner bag family) that created it, paired with the value assignment
/// `ε` of the free comprehension variables at creation time (§5.1).
///
/// Incorporating `ε` in the label lets labels be created independently of
/// their defining dictionary and guarantees one definition per distinct
/// assignment.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label {
    /// The static index `ι`.
    pub index: u32,
    /// The value assignment `ε` — a vector of *flat* values (base values or
    /// labels) for the free variables of the defining expression.
    pub args: Vec<Value>,
}

impl Label {
    /// Create a label `⟨ι, ε⟩`.
    pub fn new(index: u32, args: Vec<Value>) -> Label {
        Label { index, args }
    }

    /// A label with no arguments (used for input inner bags, whose index is
    /// allocated freshly per bag value — Fig. 9's `D_C`).
    pub fn atomic(index: u32) -> Label {
        Label {
            index,
            args: vec![],
        }
    }

    /// Are all argument values flat (base values or labels)? Tuple arguments
    /// of flat components are also allowed, mirroring `ε : Π` being a tuple
    /// assignment.
    pub fn args_are_flat(&self) -> bool {
        fn flat(v: &Value) -> bool {
            match v {
                Value::Base(_) | Value::Label(_) => true,
                Value::Tuple(vs) => vs.iter().all(flat),
                Value::Bag(_) | Value::Dict(_) => false,
            }
        }
        self.args.iter().all(flat)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨ι{}", self.index)?;
        for a in &self.args {
            write!(f, ", {a}")?;
        }
        write!(f, "⟩")
    }
}

/// A label dictionary `L ↦ Bag(B)` with an explicit support set.
///
/// Entries map interned label ids to bag definitions; presence in the map
/// *is* membership in the support (`supp`), so `[l ↦ ∅]` is representable
/// and distinct from `[]`. Iteration stays in canonical label order (`Ord`
/// on [`Vid`] refines `Ord` on `Label`).
/// Like [`Bag`], the entry map is reference-counted with copy-on-write
/// semantics, so snapshotting shredded stores is cheap; and like `Bag`'s,
/// the key set participates in arena reclamation (label slots are retained
/// while in a support, released when dropped — see the crate's `VidMap`).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Dictionary {
    entries: Arc<VidMap<Bag>>,
}

impl Dictionary {
    /// The empty dictionary `[]` (empty support).
    pub fn empty() -> Dictionary {
        Dictionary::default()
    }

    /// The one-entry dictionary `[l ↦ bag]`.
    pub fn singleton(l: Label, bag: Bag) -> Dictionary {
        let mut d = Dictionary::empty();
        d.define(l, bag);
        d
    }

    /// Build from `(label, bag)` pairs; later pairs for the same label are
    /// *added* (`⊎`) into the earlier definition.
    pub fn from_pairs<I: IntoIterator<Item = (Label, Bag)>>(pairs: I) -> Dictionary {
        let mut d = Dictionary::empty();
        for (l, b) in pairs {
            d.add_entry(l, &b);
        }
        d
    }

    /// Define (or overwrite) the entry for `l`.
    pub fn define(&mut self, l: Label, bag: Bag) {
        self.define_id(intern::intern_label(l), bag);
    }

    /// Id-native [`Dictionary::define`]. Panics if `l` does not resolve to
    /// a label — catching the misuse at the call site instead of corrupting
    /// the support and failing later during iteration.
    pub fn define_id(&mut self, l: Vid, bag: Bag) {
        assert!(
            matches!(l.value(), Value::Label(_)),
            "dictionary key {l:?} does not resolve to a label"
        );
        Arc::make_mut(&mut self.entries).insert(l, bag);
    }

    /// Add `bag` into the definition of `l` via `⊎`, defining it if absent.
    pub fn add_entry(&mut self, l: Label, bag: &Bag) {
        self.add_entry_id(intern::intern_label(l), bag);
    }

    /// Id-native [`Dictionary::add_entry`]. Panics if `l` does not resolve
    /// to a label (see [`Dictionary::define_id`]).
    pub fn add_entry_id(&mut self, l: Vid, bag: &Bag) {
        assert!(
            matches!(l.value(), Value::Label(_)),
            "dictionary key {l:?} does not resolve to a label"
        );
        Arc::make_mut(&mut self.entries)
            .or_default_mut(l)
            .union_assign(bag);
    }

    /// The interned id of `l`, if its support could ever contain it (labels
    /// never interned are in no dictionary).
    fn label_id(l: &Label) -> Option<Vid> {
        intern::lookup_label(l)
    }

    /// Is `l` in the support?
    pub fn defines(&self, l: &Label) -> bool {
        Self::label_id(l).is_some_and(|id| self.entries.contains_key(&id))
    }

    /// Look up the definition of `l`; `None` when `l ∉ supp`.
    pub fn get(&self, l: &Label) -> Option<&Bag> {
        self.entries.get(&Self::label_id(l)?)
    }

    /// Id-native [`Dictionary::get`].
    pub fn get_id(&self, l: Vid) -> Option<&Bag> {
        self.entries.get(&l)
    }

    /// Look up the definition of `l`, erroring on undefined labels (a
    /// consistency violation, Appendix C.3).
    pub fn lookup(&self, l: &Label) -> Result<&Bag, DataError> {
        self.get(l)
            .ok_or_else(|| DataError::UndefinedLabel { label: l.clone() })
    }

    /// As a total function: `∅` outside the support (the semantics of
    /// dictionary expressions `[(ι,Π) ↦ e]` in §5.2 return `{}` for
    /// non-matching indices).
    pub fn lookup_total(&self, l: &Label) -> Bag {
        self.get(l).cloned().unwrap_or_default()
    }

    /// Number of labels in the support.
    pub fn support_size(&self) -> usize {
        self.entries.len()
    }

    /// Is the support empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over the support in canonical order.
    pub fn support(&self) -> impl Iterator<Item = &Label> {
        self.entries.keys().map(|id| id.as_label())
    }

    /// Iterate over `(label, definition)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Label, &Bag)> {
        self.entries.iter().map(|(id, b)| (id.as_label(), b))
    }

    /// Iterate over `(label id, definition)` pairs in canonical order — the
    /// id-native sibling of [`Dictionary::iter`].
    pub fn entry_ids(&self) -> impl Iterator<Item = (Vid, &Bag)> {
        self.entries.iter().map(|(&id, b)| (id, b))
    }

    /// The smallest label id in the support, if any (the interner's rank
    /// seed for dictionaries-as-values).
    pub(crate) fn first_label_id(&self) -> Option<Vid> {
        self.entries.keys().next().copied()
    }

    /// Dictionary addition `⊎`: pointwise bag addition, support union.
    ///
    /// This is the operation that can *modify* definitions and therefore
    /// implements deep updates. Entries whose bags cancel to `∅` remain in
    /// the support (the label is still defined, just empty).
    #[must_use = "`add` returns a new dictionary and leaves `self` unchanged"]
    pub fn add(&self, other: &Dictionary) -> Dictionary {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// In-place dictionary addition.
    pub fn add_assign(&mut self, other: &Dictionary) {
        if other.is_empty() {
            return;
        }
        let entries = Arc::make_mut(&mut self.entries);
        for (id, b) in other.entry_ids() {
            entries.or_default_mut(id).union_assign(b);
        }
    }

    /// Batched in-place addition: `self ⊎= d₁ ⊎ d₂ ⊎ …` with the map
    /// unshared once for the whole batch. All per-label contributions are
    /// collected into one flat sorted run (no per-label `Vec` allocation)
    /// and each touched definition is merged through the k-way kernel of
    /// [`Bag::union_many`] in a single pass over its group.
    pub fn add_assign_many<'a, I: IntoIterator<Item = &'a Dictionary>>(&mut self, others: I) {
        let mut contribs: Vec<(Vid, &Bag)> =
            others.into_iter().flat_map(|d| d.entry_ids()).collect();
        if contribs.is_empty() {
            return;
        }
        // Stable sort keeps each label's deltas in arrival order; equal
        // labels become one contiguous group.
        contribs.sort_by_key(|&(id, _)| id);
        let entries = Arc::make_mut(&mut self.entries);
        let mut at = 0;
        while at < contribs.len() {
            let (id, first) = contribs[at];
            let mut end = at + 1;
            while end < contribs.len() && contribs[end].0 == id {
                end += 1;
            }
            let entry = entries.or_default_mut(id);
            if end - at == 1 {
                entry.union_assign(first);
            } else {
                *entry = Bag::union_many(
                    std::iter::once(&*entry).chain(contribs[at..end].iter().map(|&(_, b)| b)),
                );
            }
            at = end;
        }
    }

    /// Pointwise negation `⊖` (negates every definition, keeps support).
    #[must_use = "`negate` returns a new dictionary and leaves `self` unchanged"]
    pub fn negate(&self) -> Dictionary {
        Dictionary {
            entries: Arc::new(
                self.entries
                    .iter()
                    .map(|(&id, b)| (id, b.negate()))
                    .collect(),
            ),
        }
    }

    /// Label union `∪` (§5.2): support union; a label defined on both sides
    /// must have *equal* definitions, otherwise
    /// [`DataError::DictUnionConflict`] is returned.
    pub fn label_union(&self, other: &Dictionary) -> Result<Dictionary, DataError> {
        if other.is_empty() {
            return Ok(self.clone());
        }
        let mut out = self.clone();
        let entries = Arc::make_mut(&mut out.entries);
        for (id, b) in other.entry_ids() {
            match entries.get(&id) {
                None => {
                    entries.insert(id, b.clone());
                }
                // Id-keyed bags compare shallowly (`Vid` equality per
                // entry), so the §5.2 agreement check is cheap.
                Some(existing) if existing == b => {}
                Some(_) => {
                    return Err(DataError::DictUnionConflict {
                        label: id.as_label().clone(),
                    });
                }
            }
        }
        Ok(out)
    }

    /// Restrict to labels satisfying `keep` (used by domain maintenance to
    /// garbage-collect definitions whose labels no longer occur in any flat
    /// view).
    pub fn retain<F: FnMut(&Label) -> bool>(&mut self, mut keep: F) {
        Arc::make_mut(&mut self.entries).retain_entries(|id, _| keep(id.as_label()));
    }

    /// Total cardinality of all definitions (sum of absolute multiplicities).
    pub fn total_cardinality(&self) -> u64 {
        self.entries.values().map(Bag::cardinality).sum()
    }
}

impl fmt::Debug for Dictionary {
    /// Debug renders resolved labels (not raw ids) so test failures stay
    /// readable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl fmt::Display for Dictionary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (l, b)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l} ↦ {b}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(items: &[&str]) -> Bag {
        Bag::from_values(items.iter().map(|s| Value::str(*s)))
    }

    fn l(i: u32) -> Label {
        Label::atomic(i)
    }

    // The worked examples of Appendix C.2.
    #[test]
    fn appendix_c2_label_union_agreeing() {
        let d1 = Dictionary::from_pairs([(l(1), bag(&["b1"])), (l(2), bag(&["b2", "b3"]))]);
        let d2 = Dictionary::from_pairs([(l(2), bag(&["b2", "b3"])), (l(3), bag(&["b4"]))]);
        let u = d1.label_union(&d2).unwrap();
        assert_eq!(u.support_size(), 3);
        assert_eq!(u.get(&l(2)), Some(&bag(&["b2", "b3"])));
    }

    #[test]
    fn appendix_c2_addition_doubles_shared_definitions() {
        let d1 = Dictionary::from_pairs([(l(1), bag(&["b1"])), (l(2), bag(&["b2", "b3"]))]);
        let d2 = Dictionary::from_pairs([(l(2), bag(&["b2", "b3"])), (l(3), bag(&["b4"]))]);
        let s = d1.add(&d2);
        // l2 ↦ {b2², b3²}
        assert_eq!(s.get(&l(2)).unwrap().multiplicity(&Value::str("b2")), 2);
        assert_eq!(s.get(&l(2)).unwrap().multiplicity(&Value::str("b3")), 2);
    }

    #[test]
    fn appendix_c2_label_union_conflict_errors() {
        let d1 = Dictionary::from_pairs([(l(2), bag(&["b2", "b3"]))]);
        let d2 = Dictionary::from_pairs([(l(2), bag(&["b5"]))]);
        let err = d1.label_union(&d2).unwrap_err();
        assert_eq!(err, DataError::DictUnionConflict { label: l(2) });
    }

    #[test]
    fn appendix_c2_addition_merges_conflicting_definitions() {
        let d1 = Dictionary::from_pairs([(l(2), bag(&["b2", "b3"]))]);
        let d2 = Dictionary::from_pairs([(l(2), bag(&["b5"]))]);
        let s = d1.add(&d2);
        assert_eq!(s.get(&l(2)), Some(&bag(&["b2", "b3", "b5"])));
    }

    #[test]
    fn empty_definition_differs_from_undefined() {
        let defined_empty = Dictionary::singleton(l(1), Bag::empty());
        let undefined = Dictionary::empty();
        assert_ne!(defined_empty, undefined);
        assert!(defined_empty.defines(&l(1)));
        assert!(!undefined.defines(&l(1)));
        assert_eq!(defined_empty.lookup_total(&l(1)), Bag::empty());
        assert!(undefined.lookup(&l(1)).is_err());
    }

    #[test]
    fn addition_keeps_cancelled_entries_in_support() {
        let d = Dictionary::singleton(l(1), bag(&["x"]));
        let neg = d.negate();
        let sum = d.add(&neg);
        assert!(sum.defines(&l(1)));
        assert_eq!(sum.get(&l(1)), Some(&Bag::empty()));
    }

    #[test]
    fn add_is_commutative_and_associative() {
        let a = Dictionary::singleton(l(1), bag(&["x"]));
        let b = Dictionary::from_pairs([(l(1), bag(&["y"])), (l(2), bag(&["z"]))]);
        let c = Dictionary::singleton(l(2), bag(&["w"]));
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn add_assign_many_matches_folded_addition() {
        let base = Dictionary::from_pairs([(l(1), bag(&["a"])), (l(2), bag(&["b"]))]);
        let d1 = Dictionary::from_pairs([(l(1), bag(&["x"])), (l(3), bag(&["c"]))]);
        let d2 = Dictionary::from_pairs([(l(1), bag(&["y"])), (l(2), bag(&["b"]))]);
        let folded = base.add(&d1).add(&d2);
        let mut batched = base.clone();
        batched.add_assign_many([&d1, &d2]);
        assert_eq!(batched, folded);
        // Empty batch is a no-op.
        let mut same = base.clone();
        same.add_assign_many([]);
        assert_eq!(same, base);
    }

    #[test]
    fn labels_order_and_display() {
        let la = Label::new(1, vec![Value::str("Drive")]);
        let lb = Label::new(1, vec![Value::str("Rush")]);
        assert!(la < lb);
        assert_eq!(la.to_string(), "⟨ι1, \"Drive\"⟩");
        assert!(la.args_are_flat());
        let bad = Label::new(2, vec![Value::Bag(Bag::empty())]);
        assert!(!bad.args_are_flat());
    }

    #[test]
    fn retain_filters_support() {
        let mut d = Dictionary::from_pairs([(l(1), bag(&["a"])), (l(2), bag(&["b"]))]);
        d.retain(|lab| lab.index == 2);
        assert!(!d.defines(&l(1)));
        assert!(d.defines(&l(2)));
    }

    #[test]
    fn total_cardinality_sums_definitions() {
        let d = Dictionary::from_pairs([(l(1), bag(&["a", "b"])), (l(2), bag(&["c"]))]);
        assert_eq!(d.total_cardinality(), 3);
    }

    #[test]
    fn id_native_entries_match_label_entries() {
        let d = Dictionary::from_pairs([(l(3), bag(&["a"])), (l(1), bag(&["b"]))]);
        // Canonical order: ι1 before ι3.
        let labels: Vec<&Label> = d.support().collect();
        assert_eq!(labels, vec![&l(1), &l(3)]);
        for (id, b) in d.entry_ids() {
            assert_eq!(d.get_id(id), Some(b));
            assert_eq!(d.get(id.as_label()), Some(b));
        }
        let probe = Label::new(99, vec![Value::str("never-interned-label-arg-z9")]);
        assert!(!d.defines(&probe));
        assert!(d.get(&probe).is_none());
    }
}
