//! The §2 movies workload at scale.
//!
//! `M(name, gen, dir)` with `n` movies over bounded genre and director
//! domains. With `g` genres and `d` directors, `related`'s inner bags have
//! expected size `n/g + n/d`, so both the O(n²) re-evaluation and the
//! O(nd + d²) incremental cost of §2.2 are visible at laptop scales.

use nrc_data::{Bag, BaseType, Database, Type, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the movies relation and its update streams.
pub struct MovieGen {
    rng: StdRng,
    /// Number of distinct genres.
    pub genres: usize,
    /// Number of distinct directors.
    pub directors: usize,
    next_id: usize,
}

impl MovieGen {
    /// A deterministic generator. `genres`/`directors` bound the join
    /// fan-out of `isRelated`.
    pub fn new(seed: u64, genres: usize, directors: usize) -> MovieGen {
        MovieGen {
            rng: StdRng::seed_from_u64(seed),
            genres,
            directors,
            next_id: 0,
        }
    }

    /// The `Movie` element type: `⟨name, gen, dir⟩`, all strings.
    pub fn movie_type() -> Type {
        Type::Tuple(vec![
            Type::Base(BaseType::Str),
            Type::Base(BaseType::Str),
            Type::Base(BaseType::Str),
        ])
    }

    /// One fresh movie tuple (names are unique, genre/director drawn from
    /// the bounded domains).
    pub fn movie(&mut self) -> Value {
        let id = self.next_id;
        self.next_id += 1;
        let g = self.rng.gen_range(0..self.genres);
        let d = self.rng.gen_range(0..self.directors);
        Value::Tuple(vec![
            Value::str(format!("movie{id:06}")),
            Value::str(format!("genre{g}")),
            Value::str(format!("dir{d}")),
        ])
    }

    /// A bag of `n` fresh movies.
    pub fn bag(&mut self, n: usize) -> Bag {
        Bag::from_values((0..n).map(|_| self.movie()))
    }

    /// A database with relation `M` of `n` movies.
    pub fn database(&mut self, n: usize) -> Database {
        let mut db = Database::new();
        db.insert_relation("M", Self::movie_type(), self.bag(n));
        db
    }

    /// An update batch: `inserts` fresh movies plus `deletes` random
    /// deletions drawn from `current`.
    pub fn update(&mut self, current: &Bag, inserts: usize, deletes: usize) -> Bag {
        let mut delta = self.bag(inserts);
        if deletes > 0 {
            let existing: Vec<&Value> = current
                .iter()
                .filter(|(_, m)| *m > 0)
                .map(|(v, _)| v)
                .collect();
            for _ in 0..deletes.min(existing.len()) {
                let v = existing[self.rng.gen_range(0..existing.len())];
                delta.insert(v.clone(), -1);
            }
        }
        delta
    }

    /// A stream of `batches` update batches of `batch_size` insertions each
    /// (the common data-warehouse-loading shape).
    pub fn insert_stream(&mut self, batches: usize, batch_size: usize) -> Vec<Bag> {
        (0..batches).map(|_| self.bag(batch_size)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_has_requested_cardinality() {
        let mut g = MovieGen::new(7, 4, 8);
        let db = g.database(100);
        assert_eq!(db.get("M").unwrap().cardinality(), 100);
        assert!(db
            .get("M")
            .unwrap()
            .iter()
            .all(|(v, _)| v.conforms_to(&MovieGen::movie_type())));
    }

    #[test]
    fn names_are_unique() {
        let mut g = MovieGen::new(7, 2, 2);
        let bag = g.bag(50);
        assert_eq!(bag.distinct_count(), 50);
    }

    #[test]
    fn genres_and_directors_are_bounded() {
        let mut g = MovieGen::new(1, 3, 2);
        let bag = g.bag(200);
        let genres: std::collections::BTreeSet<_> = bag
            .iter()
            .map(|(v, _)| v.project(1).unwrap().clone())
            .collect();
        let dirs: std::collections::BTreeSet<_> = bag
            .iter()
            .map(|(v, _)| v.project(2).unwrap().clone())
            .collect();
        assert!(genres.len() <= 3);
        assert!(dirs.len() <= 2);
    }

    #[test]
    fn updates_mix_inserts_and_deletes() {
        let mut g = MovieGen::new(3, 4, 4);
        let base = g.bag(20);
        let delta = g.update(&base, 2, 3);
        let pos: i64 = delta.iter().map(|(_, m)| m.max(0)).sum();
        let neg: i64 = delta.iter().map(|(_, m)| m.min(0)).sum();
        assert_eq!(pos, 2);
        assert_eq!(neg, -3);
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || MovieGen::new(42, 4, 4).bag(10);
        assert_eq!(mk(), mk());
    }
}
