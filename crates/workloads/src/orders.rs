//! Nested orders workload (experiment E5, deep updates).
//!
//! `Customers : Bag(⟨cust_id, name, Bag(⟨order_id, Bag(item)⟩)⟩)` — a
//! two-deep nesting where realistic updates are *deep*: adding an item to
//! one order, or an order to one customer, without rewriting the customer
//! tuple. This is exactly the update shape §2's discussion motivates and
//! shredded IVM supports natively.

use nrc_data::{Bag, BaseType, Database, Type, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the nested customers/orders/items relation.
pub struct OrdersGen {
    rng: StdRng,
    /// Item identifier domain size.
    pub item_domain: usize,
    next_customer: i64,
    next_order: i64,
}

impl OrdersGen {
    /// A deterministic generator.
    pub fn new(seed: u64, item_domain: usize) -> OrdersGen {
        OrdersGen {
            rng: StdRng::seed_from_u64(seed),
            item_domain,
            next_customer: 0,
            next_order: 0,
        }
    }

    /// The element type of `Customers`.
    pub fn customer_type() -> Type {
        Type::Tuple(vec![
            Type::Base(BaseType::Int), // cust_id
            Type::Base(BaseType::Str), // name
            Type::bag(Self::order_type()),
        ])
    }

    /// The element type of the orders inner bag.
    pub fn order_type() -> Type {
        Type::Tuple(vec![
            Type::Base(BaseType::Int),            // order_id
            Type::bag(Type::Base(BaseType::Int)), // items
        ])
    }

    /// One item value.
    pub fn item(&mut self) -> Value {
        Value::int(self.rng.gen_range(0..self.item_domain as i64))
    }

    /// One order with `items` items.
    pub fn order(&mut self, items: usize) -> Value {
        let id = self.next_order;
        self.next_order += 1;
        Value::Tuple(vec![
            Value::int(id),
            Value::Bag(Bag::from_values((0..items).map(|_| self.item()))),
        ])
    }

    /// One customer with `orders` orders of up to `max_items` items each.
    pub fn customer(&mut self, orders: usize, max_items: usize) -> Value {
        let id = self.next_customer;
        self.next_customer += 1;
        let os: Vec<Value> = (0..orders)
            .map(|_| {
                let items = self.rng.gen_range(1..=max_items.max(1));
                self.order(items)
            })
            .collect();
        Value::Tuple(vec![
            Value::int(id),
            Value::str(format!("cust{id:05}")),
            Value::Bag(Bag::from_values(os)),
        ])
    }

    /// A database with `customers` customers, each with up to `max_orders`
    /// orders of up to `max_items` items.
    pub fn database(&mut self, customers: usize, max_orders: usize, max_items: usize) -> Database {
        let bag = Bag::from_values((0..customers).map(|_| {
            let orders = self.rng.gen_range(1..=max_orders.max(1));
            self.customer(orders, max_items)
        }));
        let mut db = Database::new();
        db.insert_relation("Customers", Self::customer_type(), bag);
        db
    }

    /// A batch of fresh items to add to some order (the deep-update
    /// payload; flat values, ready for a dictionary `⊎`).
    pub fn item_batch(&mut self, n: usize) -> Bag {
        Bag::from_values((0..n).map(|_| self.item()))
    }

    /// A bag of fresh customers (a classical top-level insertion).
    pub fn customer_batch(&mut self, n: usize, max_orders: usize, max_items: usize) -> Bag {
        Bag::from_values((0..n).map(|_| {
            let orders = self.rng.gen_range(1..=max_orders.max(1));
            self.customer(orders, max_items)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_shape() {
        let mut g = OrdersGen::new(5, 100);
        let db = g.database(10, 3, 4);
        let bag = db.get("Customers").unwrap();
        assert_eq!(bag.cardinality(), 10);
        for (c, _) in bag.iter() {
            assert!(
                c.conforms_to(&OrdersGen::customer_type()),
                "bad customer {c}"
            );
            let orders = c.project(2).unwrap().as_bag().unwrap();
            assert!((1..=3).contains(&(orders.cardinality() as usize)));
        }
    }

    #[test]
    fn ids_are_unique_across_customers_and_orders() {
        let mut g = OrdersGen::new(5, 10);
        let db = g.database(20, 3, 2);
        let bag = db.get("Customers").unwrap();
        let ids: std::collections::BTreeSet<_> = bag
            .iter()
            .map(|(v, _)| v.project(0).unwrap().clone())
            .collect();
        assert_eq!(ids.len(), 20);
        let mut order_ids = std::collections::BTreeSet::new();
        for (c, _) in bag.iter() {
            for (o, _) in c.project(2).unwrap().as_bag().unwrap().iter() {
                assert!(order_ids.insert(o.project(0).unwrap().clone()));
            }
        }
    }

    #[test]
    fn item_batches_are_flat() {
        let mut g = OrdersGen::new(9, 50);
        let batch = g.item_batch(5);
        assert!(batch.cardinality() >= 1);
        for (v, _) in batch.iter() {
            assert!(matches!(v, Value::Base(_)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || OrdersGen::new(11, 10).database(5, 2, 2);
        assert_eq!(mk(), mk());
    }
}
