//! Mixed read/write serving workload: deterministic *read-op* streams to
//! run against snapshots while a [`crate::StreamGen`] write stream ingests.
//!
//! The crate stays engine-agnostic (it does not depend on `nrc-engine` or
//! the serving layer): a read workload here is a seeded sequence of
//! [`ReadOp`] *descriptions* — skewed point lookups over the write
//! stream's live population, deliberate misses, and bounded ordered scans
//! — which the bench/serving layer executes against whatever snapshot
//! implementation it drives. Determinism per `(seed, config, population)`
//! makes reader traces replayable for consistency checking: the same ops
//! re-executed against a sequential replay at the same batch index must
//! observe the same results.

use crate::stream::StreamGen;
use nrc_data::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One read operation against a view snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadOp {
    /// Point lookup of this value's multiplicity (the value may have been
    /// deleted — or never inserted — by the time the op runs; multiplicity
    /// 0 is then the correct answer).
    Point(Value),
    /// Ordered scan of up to `limit` elements from the start of the view.
    Scan {
        /// Maximum number of `(value, multiplicity)` pairs to visit.
        limit: usize,
    },
}

/// Shape of a reader's op mix.
#[derive(Clone, Debug)]
pub struct ReadMixConfig {
    /// Read ops generated per reader.
    pub ops: usize,
    /// Fraction of ops that are point lookups (the rest are scans).
    /// Clamped to `[0, 1]`.
    pub point_fraction: f64,
    /// Fraction of *point lookups* that deliberately probe a value the
    /// write stream never emits (cache-miss traffic). Clamped to `[0, 1]`.
    pub miss_fraction: f64,
    /// Skew exponent for picking point targets from the population: `1.0`
    /// uniform, larger concentrates on the population's head — the same
    /// convention as [`crate::StreamConfig::skew`].
    pub skew: f64,
    /// `limit` of generated scans.
    pub scan_limit: usize,
}

impl Default for ReadMixConfig {
    fn default() -> ReadMixConfig {
        ReadMixConfig {
            ops: 256,
            point_fraction: 0.8,
            miss_fraction: 0.1,
            skew: 2.0,
            scan_limit: 32,
        }
    }
}

/// Generate one reader's deterministic op sequence over a fixed
/// `population` of candidate point targets (typically
/// [`StreamGen::live_tuples`] at workload setup). Each reader gets its own
/// `seed` so concurrent readers exercise different footprints.
pub fn reader_ops(seed: u64, cfg: &ReadMixConfig, population: &[Value]) -> Vec<ReadOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let point_fraction = cfg.point_fraction.clamp(0.0, 1.0);
    let miss_fraction = cfg.miss_fraction.clamp(0.0, 1.0);
    let mut ops = Vec::with_capacity(cfg.ops);
    for i in 0..cfg.ops {
        if population.is_empty() || !rng.gen_bool(point_fraction) {
            ops.push(ReadOp::Scan {
                limit: cfg.scan_limit.max(1),
            });
        } else if rng.gen_bool(miss_fraction) {
            // A tuple shaped like the stream's but from a disjoint
            // namespace: guaranteed absent, and probing for it must not
            // perturb anything (lookups never intern).
            ops.push(ReadOp::Point(Value::Tuple(vec![
                Value::str(format!("read-miss-{seed:08x}-{i:06}")),
                Value::str("genre-miss"),
                Value::str("dir-miss"),
            ])));
        } else {
            let u: f64 = rng.gen::<f64>();
            let idx = ((population.len() as f64) * u.powf(cfg.skew.max(1.0))) as usize;
            let idx = idx.min(population.len() - 1);
            ops.push(ReadOp::Point(population[idx].clone()));
        }
    }
    ops
}

/// Convenience: per-reader op sequences over the generator's current live
/// population — one `Vec<ReadOp>` per reader, seeds derived from `seed`.
pub fn reader_op_sets(
    seed: u64,
    readers: usize,
    cfg: &ReadMixConfig,
    gen: &StreamGen,
) -> Vec<Vec<ReadOp>> {
    (0..readers)
        .map(|r| reader_ops(seed.wrapping_add(1 + r as u64), cfg, gen.live_tuples()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamConfig;

    #[test]
    fn reader_ops_are_deterministic_and_respect_the_mix() {
        let mut gen = StreamGen::new(3, StreamConfig::default());
        gen.database(64);
        let cfg = ReadMixConfig {
            ops: 400,
            point_fraction: 0.75,
            miss_fraction: 0.2,
            ..ReadMixConfig::default()
        };
        let a = reader_ops(9, &cfg, gen.live_tuples());
        let b = reader_ops(9, &cfg, gen.live_tuples());
        assert_eq!(a, b, "same seed, same ops");
        let c = reader_ops(10, &cfg, gen.live_tuples());
        assert_ne!(a, c, "different seeds diverge");
        let points = a.iter().filter(|op| matches!(op, ReadOp::Point(_))).count();
        assert!(points > 200 && points < 390, "≈75% points, got {points}");
        let miss_marker = Value::str("genre-miss");
        let misses = a
            .iter()
            .filter(|op| matches!(op, ReadOp::Point(Value::Tuple(t)) if t[1] == miss_marker))
            .count();
        assert!(misses > 0, "some misses must be generated");
    }

    #[test]
    fn empty_population_degenerates_to_scans() {
        let cfg = ReadMixConfig::default();
        let ops = reader_ops(1, &cfg, &[]);
        assert!(ops.iter().all(|op| matches!(op, ReadOp::Scan { .. })));
    }

    #[test]
    fn per_reader_sets_differ() {
        let mut gen = StreamGen::new(5, StreamConfig::default());
        gen.database(32);
        let sets = reader_op_sets(42, 3, &ReadMixConfig::default(), &gen);
        assert_eq!(sets.len(), 3);
        assert_ne!(sets[0], sets[1]);
        assert_ne!(sets[1], sets[2]);
    }
}
