//! Kill-point recovery driver: prebuilt deterministic streams and crash
//! offsets for the durability experiments (E13) and the kill-point
//! differential harness (`tests/prop_recovery.rs`).
//!
//! Crash testing needs the *same* update stream on three paths — the
//! uncrashed reference replay, the run that gets killed, and the
//! post-recovery continuation — so this module materializes the stream up
//! front instead of re-generating it behind mutable generator state: a
//! [`RecoveryPlan`] is one initial database plus the full batch list, and
//! every consumer indexes into it. Batches stay engine-agnostic
//! `(relation, Δ)` pairs (this crate does not depend on `nrc-engine`); the
//! durable/bench layers fold them into `UpdateBatch`es.
//!
//! Crash *points* are byte offsets into the durable output; sampling them
//! here keeps the harness's kill placement seeded and reproducible. The
//! sampler is deliberately biased toward record interiors (every offset in
//! `1..total` is eligible, drawn uniformly), which covers mid-record,
//! mid-checkpoint, and between-fsync tears as the offset lands.

use crate::stream::{StreamConfig, StreamGen};
use nrc_data::{Bag, Database};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A materialized recovery workload: one initial database and the full,
/// deterministic batch sequence every consumer shares.
#[derive(Clone, Debug)]
pub struct RecoveryPlan {
    /// The initial database (relation `M` seeded with live tuples).
    pub db: Database,
    /// The batches, in stream order; `batches[i]` is durable batch `i + 1`.
    pub batches: Vec<Vec<(String, Bag)>>,
}

impl RecoveryPlan {
    /// Materialize a plan: `initial` seed tuples, then `nbatches` batches
    /// of the configured stream. Identical `(seed, cfg, initial,
    /// nbatches)` always yields an identical plan.
    pub fn generate(seed: u64, cfg: StreamConfig, initial: usize, nbatches: usize) -> RecoveryPlan {
        let mut gen = StreamGen::new(seed, cfg);
        let db = gen.database(initial);
        let batches = gen.batches(nbatches);
        RecoveryPlan { db, batches }
    }

    /// Number of batches in the plan.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }
}

/// Draw `k` crash offsets (durable-output byte budgets) in `1..=total`,
/// deterministically per seed. Offsets are unsorted and may repeat; each
/// is a byte at which the kill-point harness tears the durable stream.
pub fn kill_offsets(seed: u64, total: u64, k: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            if total == 0 {
                0
            } else {
                rng.gen_range(1..=total)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_shared() {
        let cfg = StreamConfig::ever_fresh(8, "recovery-test");
        let a = RecoveryPlan::generate(42, cfg.clone(), 10, 5);
        let b = RecoveryPlan::generate(42, cfg, 10, 5);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert_eq!(a.batches[0].len(), 8);
        // The database seeds the live population deletions draw from.
        assert_eq!(a.db.get("M").unwrap().cardinality(), 10);
    }

    #[test]
    fn kill_offsets_are_seeded_and_bounded() {
        let a = kill_offsets(7, 1000, 16);
        let b = kill_offsets(7, 1000, 16);
        assert_eq!(a, b);
        assert!(a.iter().all(|&o| (1..=1000).contains(&o)));
        assert_ne!(a, kill_offsets(8, 1000, 16));
        assert_eq!(kill_offsets(7, 0, 3), vec![0, 0, 0]);
    }
}
