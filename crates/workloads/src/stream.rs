//! High-volume streaming workload: update *batches* of configurable size
//! and skew over the §2 movies schema.
//!
//! Models the ingestion shape the batched maintenance path
//! (`IvmSystem::apply_batch`) is built for: a firehose of small single-tuple
//! updates arriving faster than per-update refresh can absorb, grouped into
//! batches by the transport. Two knobs shape the stream:
//!
//! * **batch size** — raw updates per emitted batch;
//! * **skew** — how concentrated genre/director choices are. `1.0` is
//!   uniform; larger values push the mass toward the low indices
//!   (`index ≈ domain · u^skew` for uniform `u`), producing the hot-key
//!   distributions under which coalescing pays off most (repeated touches
//!   of the same tuples cancel or merge).
//!
//! Batches are emitted as engine-agnostic `(relation, Δ)` pairs so the
//! crate stays independent of `nrc-engine`; the bench layer folds them into
//! `UpdateBatch`es.

use nrc_data::{Bag, Database, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a [`StreamGen`].
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Raw updates per batch.
    pub batch_size: usize,
    /// Fraction of updates that are deletions of live tuples (the rest are
    /// insertions). Clamped to `[0, 1]`.
    pub delete_fraction: f64,
    /// Skew exponent for genre/director selection; `1.0` = uniform, larger
    /// = hotter head.
    pub skew: f64,
    /// Number of distinct genres.
    pub genres: usize,
    /// Number of distinct directors.
    pub directors: usize,
    /// Prefix of generated movie names. Names are `{prefix}{counter:06}`,
    /// so two generators with different prefixes emit *disjoint* tuple
    /// payloads — what memory experiments need to guarantee every run
    /// interns genuinely fresh values instead of hitting the arena entries
    /// of a previous run.
    pub payload_prefix: String,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            batch_size: 64,
            delete_fraction: 0.2,
            skew: 2.0,
            genres: 16,
            directors: 32,
            payload_prefix: "movie".to_string(),
        }
    }
}

impl StreamConfig {
    /// The *ever-fresh churn* shape the memory/latency experiments (E10,
    /// E11) measure reclamation under: a balanced 50% insert/delete mix —
    /// so the live tuple population stays roughly flat while every
    /// insertion interns genuinely fresh payloads — under a caller-unique
    /// prefix, so no two experiment cells share arena entries.
    pub fn ever_fresh(batch_size: usize, prefix: &str) -> StreamConfig {
        StreamConfig {
            batch_size,
            delete_fraction: 0.5,
            payload_prefix: format!("{prefix}-"),
            ..StreamConfig::default()
        }
    }
}

/// Generator of batched update streams over `M(name, gen, dir)`.
///
/// Deterministic per seed. The generator tracks the live tuple population
/// itself so emitted deletions always target tuples that exist at that
/// point of the stream — batches are valid whether applied one update at a
/// time or coalesced.
pub struct StreamGen {
    rng: StdRng,
    cfg: StreamConfig,
    next_id: usize,
    /// Tuples currently live (insertions minus deletions), kept in emission
    /// order for O(1) random victim selection.
    live: Vec<Value>,
}

impl StreamGen {
    /// A deterministic stream generator.
    pub fn new(seed: u64, cfg: StreamConfig) -> StreamGen {
        StreamGen {
            rng: StdRng::seed_from_u64(seed),
            cfg,
            next_id: 0,
            live: Vec::new(),
        }
    }

    /// Draw a skewed index in `0..domain`.
    fn skewed_index(&mut self, domain: usize) -> usize {
        let u: f64 = self.rng.gen::<f64>();
        let idx = (domain as f64 * u.powf(self.cfg.skew.max(1.0))) as usize;
        idx.min(domain.saturating_sub(1))
    }

    fn fresh_movie(&mut self) -> Value {
        let id = self.next_id;
        self.next_id += 1;
        let g = self.skewed_index(self.cfg.genres.max(1));
        let d = self.skewed_index(self.cfg.directors.max(1));
        Value::Tuple(vec![
            Value::str(format!("{}{id:06}", self.cfg.payload_prefix)),
            Value::str(format!("genre{g}")),
            Value::str(format!("dir{d}")),
        ])
    }

    /// A database with `n` initial movies in relation `M` (these seed the
    /// live population for later deletions).
    pub fn database(&mut self, n: usize) -> Database {
        let mut bag = Bag::empty();
        for _ in 0..n {
            let m = self.fresh_movie();
            self.live.push(m.clone());
            bag.insert(m, 1);
        }
        let mut db = Database::new();
        db.insert_relation("M", crate::MovieGen::movie_type(), bag);
        db
    }

    /// The next batch: `batch_size` single-tuple updates against `M`, mixing
    /// insertions with deletions of live tuples per
    /// [`StreamConfig::delete_fraction`].
    pub fn next_batch(&mut self) -> Vec<(String, Bag)> {
        let mut out = Vec::with_capacity(self.cfg.batch_size);
        for _ in 0..self.cfg.batch_size {
            let delete = !self.live.is_empty()
                && self.rng.gen_bool(self.cfg.delete_fraction.clamp(0.0, 1.0));
            let delta = if delete {
                let i = self.rng.gen_range(0..self.live.len());
                let victim = self.live.swap_remove(i);
                Bag::from_pairs([(victim, -1)])
            } else {
                let m = self.fresh_movie();
                self.live.push(m.clone());
                Bag::singleton(m)
            };
            out.push(("M".to_string(), delta));
        }
        out
    }

    /// Emit `n` consecutive batches.
    pub fn batches(&mut self, n: usize) -> Vec<Vec<(String, Bag)>> {
        (0..n).map(|_| self.next_batch()).collect()
    }

    /// Number of currently live tuples.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The currently live tuples, in emission order. Read workloads sample
    /// their point-lookup targets from this population (see
    /// `crate::serve_mix`).
    pub fn live_tuples(&self) -> &[Value] {
        &self.live
    }
}

#[cfg(test)]
mod prefix_tests {
    use super::*;

    #[test]
    fn payload_prefix_disjoins_streams() {
        let mk = |prefix: &str| {
            let cfg = StreamConfig {
                payload_prefix: prefix.to_string(),
                delete_fraction: 0.0,
                ..StreamConfig::default()
            };
            let mut g = StreamGen::new(5, cfg);
            g.next_batch()
        };
        let a = mk("streamA-");
        let b = mk("streamB-");
        for ((_, da), (_, db)) in a.iter().zip(&b) {
            let (va, _) = da.iter().next().unwrap();
            let (vb, _) = db.iter().next().unwrap();
            assert_ne!(va, vb, "prefixed streams must not share payloads");
        }
        // Default prefix preserves the historical names.
        let mut g = StreamGen::new(5, StreamConfig::default());
        let batch = g.next_batch();
        let (v, _) = batch[0].1.iter().next().unwrap();
        let name = format!("{}", v.project(0).unwrap());
        assert!(name.contains("movie00000"), "got {name}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ever_fresh_preset_balances_churn_under_a_unique_prefix() {
        let cfg = StreamConfig::ever_fresh(24, "cell-a");
        assert_eq!(cfg.batch_size, 24);
        assert_eq!(cfg.delete_fraction, 0.5);
        assert_eq!(cfg.payload_prefix, "cell-a-");
        let mut g = StreamGen::new(11, cfg);
        g.database(10);
        let batch = g.next_batch();
        assert_eq!(batch.len(), 24);
        for (_, d) in &batch {
            let (v, _) = d.iter().next().unwrap();
            let name = format!("{}", v.project(0).unwrap());
            assert!(name.contains("cell-a-"), "got {name}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            let mut g = StreamGen::new(42, StreamConfig::default());
            g.database(50);
            g.batches(3)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
    }

    #[test]
    fn batches_have_configured_size() {
        let cfg = StreamConfig {
            batch_size: 17,
            ..StreamConfig::default()
        };
        let mut g = StreamGen::new(1, cfg);
        g.database(10);
        let batch = g.next_batch();
        assert_eq!(batch.len(), 17);
        assert!(batch
            .iter()
            .all(|(rel, d)| rel == "M" && d.cardinality() == 1));
    }

    #[test]
    fn deletions_target_live_tuples() {
        let cfg = StreamConfig {
            batch_size: 200,
            delete_fraction: 0.5,
            ..StreamConfig::default()
        };
        let mut g = StreamGen::new(7, cfg);
        let mut db = g.database(100);
        for batch in g.batches(5) {
            for (rel, delta) in &batch {
                // Applying one at a time never drives a multiplicity
                // negative: deletions always hit live tuples.
                db.apply_update(rel, delta).unwrap();
                assert!(
                    db.get("M").unwrap().is_proper(),
                    "deletion of a non-live tuple"
                );
            }
        }
        assert_eq!(db.get("M").unwrap().cardinality() as usize, g.live_count());
    }

    #[test]
    fn skew_concentrates_the_head() {
        let uniform = StreamConfig {
            skew: 1.0,
            batch_size: 500,
            delete_fraction: 0.0,
            ..Default::default()
        };
        let skewed = StreamConfig {
            skew: 4.0,
            batch_size: 500,
            delete_fraction: 0.0,
            ..Default::default()
        };
        let head_share = |cfg: StreamConfig| {
            let mut g = StreamGen::new(3, cfg);
            let batch = g.next_batch();
            let hot = batch
                .iter()
                .filter(|(_, d)| {
                    let (v, _) = d.iter().next().unwrap();
                    v.project(1).unwrap() == &Value::str("genre0")
                })
                .count();
            hot as f64 / batch.len() as f64
        };
        assert!(head_share(skewed) > head_share(uniform) * 2.0);
    }
}
