//! Nested bags with per-level cardinality control (experiment E4).
//!
//! The cost domains of §4.2 attach one cardinality per nesting level
//! precisely because *"data may be distributed unevenly across the nesting
//! levels of a bag, while one can write queries that operate just on a
//! particular nested level"*. This generator produces `Bag(Bag(…Bag(Int)))`
//! instances with an explicit cardinality profile per level, so a query
//! touching level `i` costs according to that level's cardinality — the
//! behaviour `C[[·]]` is designed to predict.

use nrc_data::{Bag, BaseType, Database, Type, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for nesting-profile-controlled bags.
pub struct SkewGen {
    rng: StdRng,
    /// Value domain for the leaves.
    pub leaf_domain: i64,
}

impl SkewGen {
    /// A deterministic generator.
    pub fn new(seed: u64, leaf_domain: i64) -> SkewGen {
        SkewGen {
            rng: StdRng::seed_from_u64(seed),
            leaf_domain: leaf_domain.max(1),
        }
    }

    /// The type `Bag(Bag(…Int))` with `levels` bag constructors — as an
    /// *element* type of a relation this is `levels − 1` inner levels.
    pub fn nested_type(levels: usize) -> Type {
        let mut t = Type::Base(BaseType::Int);
        for _ in 0..levels {
            t = Type::bag(t);
        }
        t
    }

    /// A nested value following `profile`: `profile[0]` elements at the top
    /// level, each containing `profile[1]` elements, and so on; the last
    /// level holds integers.
    pub fn value(&mut self, profile: &[usize]) -> Value {
        match profile.split_first() {
            None => Value::int(self.rng.gen_range(0..self.leaf_domain)),
            Some((&card, rest)) => {
                let mut bag = Bag::empty();
                // Use distinct leaves where possible so cardinalities hold
                // after dedup; collisions just lift multiplicities.
                for _ in 0..card {
                    bag.insert(self.value(rest), 1);
                }
                Value::Bag(bag)
            }
        }
    }

    /// A bag whose elements follow `profile[1..]`, with `profile[0]`
    /// elements.
    pub fn bag(&mut self, profile: &[usize]) -> Bag {
        match self.value(profile) {
            Value::Bag(b) => b,
            _ => unreachable!("profile has at least one level"),
        }
    }

    /// A database with relation `R` whose element type has
    /// `profile.len() − 1` nesting levels.
    pub fn database(&mut self, profile: &[usize]) -> Database {
        assert!(
            !profile.is_empty(),
            "profile must have at least the top level"
        );
        let bag = self.bag(profile);
        let elem_ty = Self::nested_type(profile.len() - 1);
        let mut db = Database::new();
        db.insert_relation("R", elem_ty, bag);
        db
    }

    /// An update following the same per-level profile (fresh draws; mostly
    /// insertions with `deletes` random removals from `current`).
    pub fn update(&mut self, current: &Bag, profile: &[usize], deletes: usize) -> Bag {
        let mut delta = self.bag(profile);
        let existing: Vec<&Value> = current
            .iter()
            .filter(|(_, m)| *m > 0)
            .map(|(v, _)| v)
            .collect();
        for _ in 0..deletes.min(existing.len()) {
            let v = existing[self.rng.gen_range(0..existing.len())];
            delta.insert(v.clone(), -1);
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrc_core::cost::{size_of_bag, Cost};

    #[test]
    fn profiles_control_per_level_cardinalities() {
        let mut g = SkewGen::new(3, 1_000_000);
        let db = g.database(&[4, 7]);
        let bag = db.get("R").unwrap();
        assert_eq!(bag.cardinality(), 4);
        for (v, _) in bag.iter() {
            assert_eq!(v.as_bag().unwrap().cardinality(), 7);
        }
    }

    #[test]
    fn size_of_matches_profile() {
        // The §4.2 size function should read back the generation profile.
        let mut g = SkewGen::new(9, 1_000_000_000);
        let db = g.database(&[3, 5]);
        let bag = db.get("R").unwrap();
        let c = size_of_bag(bag, db.schema("R").unwrap());
        assert_eq!(c, Cost::bag(3, Cost::bag(5, Cost::One)));
    }

    #[test]
    fn deep_profiles_nest() {
        let mut g = SkewGen::new(1, 50);
        let v = g.value(&[2, 3, 4]);
        let outer = v.as_bag().unwrap();
        assert!(outer.cardinality() <= 2);
        for (mid, _) in outer.iter() {
            for (inner, _) in mid.as_bag().unwrap().iter() {
                // Three levels: outer → mid → inner bags of integers.
                for (leaf, _) in inner.as_bag().unwrap().iter() {
                    assert!(matches!(leaf, Value::Base(_)));
                }
            }
        }
    }

    #[test]
    fn updates_respect_profile_and_deletes() {
        let mut g = SkewGen::new(5, 1_000_000);
        let base = g.bag(&[10, 2]);
        let delta = g.update(&base, &[3, 2], 2);
        let pos: i64 = delta.iter().map(|(_, m)| m.max(0)).sum();
        let neg: i64 = delta.iter().map(|(_, m)| m.min(0)).sum();
        assert_eq!(pos, 3);
        assert_eq!(neg, -2);
    }

    #[test]
    fn nested_type_builds_levels() {
        assert_eq!(SkewGen::nested_type(0), Type::Base(BaseType::Int));
        assert_eq!(
            SkewGen::nested_type(2),
            Type::bag(Type::bag(Type::Base(BaseType::Int)))
        );
    }
}
