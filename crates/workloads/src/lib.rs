//! # nrc-workloads
//!
//! Seeded, deterministic workload generators for the experiments
//! (DESIGN.md §3). The paper is a theory paper without a released testbed,
//! so these generators produce synthetic instances shaped to make its
//! asymptotic claims visible:
//!
//! * [`movies`] — the §2 motivating schema `M(name, gen, dir)` at scale,
//!   with bounded genre/director domains so `related` has non-trivial inner
//!   bags, plus insert/delete update streams;
//! * [`orders`] — a nested customer→orders→items schema for the deep-update
//!   experiments (E5);
//! * [`skew`] — nested bags with *per-level cardinality control*, exercising
//!   the level-indexed cost domains of §4.2 (E4);
//! * [`stream`] — a high-volume streaming workload emitting update
//!   *batches* of configurable size and hot-key skew, feeding the batched
//!   maintenance path (E8);
//! * [`serve_mix`] — deterministic read-op streams (skewed point lookups,
//!   misses, bounded scans) to run against snapshots while the [`stream`]
//!   writer ingests — the mixed read/write shape of the serving
//!   experiment (E12);
//! * [`recovery`] — prebuilt (fully materialized) streams plus seeded
//!   crash-offset sampling for the durability experiment (E13) and the
//!   kill-point differential harness.

pub mod movies;
pub mod orders;
pub mod recovery;
pub mod serve_mix;
pub mod skew;
pub mod stream;

pub use movies::MovieGen;
pub use orders::OrdersGen;
pub use recovery::{kill_offsets, RecoveryPlan};
pub use serve_mix::{reader_op_sets, reader_ops, ReadMixConfig, ReadOp};
pub use skew::SkewGen;
pub use stream::{StreamConfig, StreamGen};
