//! # nrc-serve
//!
//! Concurrent snapshot serving over the IVM engine: one writer ingests
//! update batches while many reader threads serve point lookups, scans and
//! label lookups from immutable, internally consistent snapshots — with
//! zero reader/writer contention and bounded GC that provably never frees
//! a slot a live snapshot can resolve.
//!
//! ## The MVCC assembly
//!
//! The pieces were already on the shelf; this crate assembles them:
//!
//! * **Cheap snapshots** — bags and dictionaries are `Arc`-backed
//!   copy-on-write maps, so freezing every registered view is O(views)
//!   pointer bumps ([`nrc_engine::IvmSystem::view_state`]); the writer's
//!   next batch mutates fresh copies, never a published snapshot's maps.
//! * **Pinned reclamation** — each [`Snapshot`] holds an
//!   [`nrc_data::EpochPin`], so the collector's horizon (the *pin
//!   horizon*, [`nrc_data::intern::pin_horizon`]) never passes the oldest
//!   outstanding snapshot; together with the retains its maps hold, every
//!   value reachable through a live snapshot stays resolvable no matter
//!   how much bounded collection runs under live ingest.
//! * **Atomic publication** — a hand-rolled, versioned `Arc` swap: readers
//!   poll a [`SnapshotReader`] whose steady state is one atomic load and
//!   no lock (see [`snapshot`] module docs for the protocol).
//! * **Change feeds** — [`ServingSystem::subscribe`] delivers each batch's
//!   coalesced per-view delta (captured by the engine's refresh itself)
//!   over a bounded drop-oldest queue, so consumers tail views without
//!   polling ([`feed`] module docs).
//!
//! ## Quickstart
//!
//! ```
//! use nrc_core::builder::{cmp_lit, filter_query};
//! use nrc_core::expr::CmpOp;
//! use nrc_data::database::{example_movies, example_movies_update};
//! use nrc_engine::{IvmSystem, Strategy, UpdateBatch};
//! use nrc_serve::ServingSystem;
//!
//! let mut serve = ServingSystem::new(IvmSystem::new(example_movies())).unwrap();
//! let dramas = filter_query("M", cmp_lit("x", vec![1], CmpOp::Eq, "Drama"));
//! serve.register("dramas", dramas, Strategy::FirstOrder).unwrap();
//!
//! // Reader side: a handle per thread; snapshots outlive later batches.
//! let mut reader = serve.reader();
//! let before = reader.snapshot();
//!
//! // Writer side: ingest and publish.
//! let mut batch = UpdateBatch::new();
//! batch.push("M", example_movies_update());
//! serve.apply_batch(&batch).unwrap();
//!
//! let after = reader.snapshot();
//! assert_eq!(before.cardinality("dramas").unwrap(), 1);
//! assert_eq!(after.cardinality("dramas").unwrap(), 2);
//! assert!(after.batch_index() > before.batch_index());
//! ```

pub mod error;
pub mod feed;
pub mod snapshot;
pub mod system;

pub use error::{serve_to_engine, ServeError};
pub use feed::{FeedDelta, Subscription};
pub use snapshot::{Snapshot, SnapshotReader};
pub use system::{LeakSuspect, ServeOptions, ServeStats, ServingSystem};
