//! Immutable, internally consistent snapshots and their publication cell.
//!
//! A [`Snapshot`] freezes the state of every registered view at one
//! quiescent batch boundary. Thanks to the copy-on-write data layer it is
//! cheap to take — per view an `Arc` pointer bump of the materialized bag
//! (plus, for shredded views, of the context dictionaries) — and safe to
//! read from any thread while the writer keeps ingesting: later batches
//! mutate fresh copies, never the maps a published snapshot shares.
//!
//! Two mechanisms keep a snapshot's contents *resolvable* (never
//! [`nrc_data::DataError::StaleVid`]) for its whole lifetime, however much
//! bounded GC runs concurrently:
//!
//! 1. the snapshot's `Arc`'d maps retain every interned element they key on
//!    — a retained slot's live count can never reach zero, so no sweep
//!    frees it;
//! 2. the snapshot holds an [`EpochPin`] taken at publication, so the
//!    collector's horizon can never pass the snapshot's epoch — the *pin
//!    horizon* ([`nrc_data::intern::pin_horizon`]) equals the oldest
//!    outstanding snapshot's epoch, and dropping that snapshot advances it.
//!
//! Publication is a hand-rolled `Arc` swap (the crate-private
//! `PublishCell`): the writer
//! installs a new `Arc<Snapshot>` under a briefly held write lock and then
//! bumps a version counter. Readers go through a [`SnapshotReader`], which
//! caches the last snapshot it fetched: while the version is unchanged a
//! read costs one atomic load and no lock at all; when it changed, one
//! shared read lock clones the new `Arc` out. Readers therefore never
//! contend with the writer's view refreshes — only with the pointer swap
//! itself, which is O(1).

use crate::error::ServeError;
use nrc_core::shred::nest_bag;
use nrc_data::{Bag, Epoch, EpochPin, Label, Value};
use nrc_engine::{EngineError, ViewStateSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// The writer-shared record of every snapshot still alive anywhere in the
/// process: a total count (the *snapshot backlog*,
/// [`crate::ServeStats::outstanding_snapshots`]) plus a per-batch-index
/// census so the *oldest* outstanding snapshot is observable
/// ([`crate::ServeStats::oldest_snapshot_age_batches`]) — a leaked
/// [`SnapshotReader`] holding an ancient snapshot pins the GC horizon, and
/// its age is how that leak shows up in telemetry.
pub(crate) struct SnapshotLedger {
    outstanding: AtomicU64,
    /// `batch_index → live snapshots published at that index`.
    by_batch: Mutex<BTreeMap<u64, u64>>,
}

impl SnapshotLedger {
    pub(crate) fn new() -> SnapshotLedger {
        SnapshotLedger {
            outstanding: AtomicU64::new(0),
            by_batch: Mutex::new(BTreeMap::new()),
        }
    }

    /// Snapshots currently alive (backlog count).
    pub(crate) fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// The smallest batch index any live snapshot was published at
    /// (`None` when no snapshot is alive). Dropping the oldest snapshot
    /// advances this.
    pub(crate) fn oldest_batch(&self) -> Option<u64> {
        self.by_batch
            .lock()
            .expect("snapshot ledger")
            .keys()
            .next()
            .copied()
    }

    /// The full census: `(publication batch index, live snapshots of that
    /// vintage)` in ascending index order — what the snapshot-TTL leak
    /// check walks.
    pub(crate) fn census(&self) -> Vec<(u64, u64)> {
        self.by_batch
            .lock()
            .expect("snapshot ledger")
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }
}

/// Registers one live snapshot in the shared [`SnapshotLedger`] on
/// creation and deregisters it on drop, so the backlog count and the
/// oldest-snapshot census track exactly the snapshots still alive anywhere
/// in the process.
struct BacklogToken {
    ledger: Arc<SnapshotLedger>,
    batch_index: u64,
}

impl BacklogToken {
    fn new(ledger: &Arc<SnapshotLedger>, batch_index: u64) -> BacklogToken {
        ledger.outstanding.fetch_add(1, Ordering::Relaxed);
        *ledger
            .by_batch
            .lock()
            .expect("snapshot ledger")
            .entry(batch_index)
            .or_insert(0) += 1;
        BacklogToken {
            ledger: Arc::clone(ledger),
            batch_index,
        }
    }
}

impl Drop for BacklogToken {
    fn drop(&mut self) {
        self.ledger.outstanding.fetch_sub(1, Ordering::Relaxed);
        let mut by_batch = self.ledger.by_batch.lock().expect("snapshot ledger");
        if let Some(count) = by_batch.get_mut(&self.batch_index) {
            *count -= 1;
            if *count == 0 {
                by_batch.remove(&self.batch_index);
            }
        }
    }
}

/// One view's frozen state plus the lazily materialized nested form of a
/// shredded view (the first reader to need it pays the nesting once; every
/// later reader of the same snapshot shares the cached result).
struct ViewSnap {
    state: ViewStateSnapshot,
    nested: OnceLock<Result<Bag, ServeError>>,
}

impl ViewSnap {
    fn new(state: ViewStateSnapshot) -> ViewSnap {
        ViewSnap {
            state,
            nested: OnceLock::new(),
        }
    }

    /// The nested result bag this view serves reads from.
    fn bag(&self) -> Result<&Bag, ServeError> {
        match &self.state {
            ViewStateSnapshot::Nested(b) => Ok(b),
            ViewStateSnapshot::Shredded { flat, ctx, elem_ty } => self
                .nested
                .get_or_init(|| {
                    nest_bag(flat, elem_ty, ctx)
                        .map_err(|e| ServeError::Engine(EngineError::from(e)))
                })
                .as_ref()
                .map_err(Clone::clone),
        }
    }
}

/// An immutable view of the whole system at one quiescent batch boundary.
///
/// All read methods are `&self` and safe to call from many threads at
/// once; none of them can observe a torn or mid-batch state, because every
/// component was frozen together after the batch's refreshes completed.
#[must_use = "a snapshot pins arena slots while it is alive; drop it when done reading"]
pub struct Snapshot {
    batch_index: u64,
    epoch: Epoch,
    views: BTreeMap<String, ViewSnap>,
    /// Shields everything resolvable through this snapshot from collection
    /// horizons (rule 2 of the module-level safety argument).
    _pin: EpochPin,
    _token: BacklogToken,
}

impl Snapshot {
    pub(crate) fn new(
        batch_index: u64,
        views: BTreeMap<String, ViewStateSnapshot>,
        pin: EpochPin,
        ledger: &Arc<SnapshotLedger>,
    ) -> Snapshot {
        Snapshot {
            batch_index,
            epoch: pin.epoch(),
            views: views
                .into_iter()
                .map(|(n, s)| (n, ViewSnap::new(s)))
                .collect(),
            _pin: pin,
            _token: BacklogToken::new(ledger, batch_index),
        }
    }

    /// Number of engine batches applied when this snapshot was published
    /// (the replay point its contents are consistent with).
    #[must_use]
    pub fn batch_index(&self) -> u64 {
        self.batch_index
    }

    /// The reclamation epoch pinned by this snapshot.
    #[must_use]
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Names of the views frozen in this snapshot.
    pub fn view_names(&self) -> impl Iterator<Item = &str> {
        self.views.keys().map(String::as_str)
    }

    /// Does the snapshot contain a view of this name?
    #[must_use]
    pub fn contains(&self, view: &str) -> bool {
        self.views.contains_key(view)
    }

    /// The frozen nested result bag of a view. For shredded views the
    /// nesting is materialized on the first access and shared by every
    /// later reader of this snapshot.
    pub fn view(&self, view: &str) -> Result<&Bag, ServeError> {
        self.views
            .get(view)
            .ok_or_else(|| ServeError::UnknownView(view.to_owned()))?
            .bag()
    }

    /// Point lookup: the multiplicity of `v` in the view (0 when absent).
    /// Probing for a never-interned value does not touch the arena.
    pub fn get(&self, view: &str, v: &Value) -> Result<i64, ServeError> {
        Ok(self.view(view)?.multiplicity(v))
    }

    /// Ordered scan of up to `limit` `(value, multiplicity)` pairs in the
    /// canonical element order.
    pub fn scan(&self, view: &str, limit: usize) -> Result<Vec<(Value, i64)>, ServeError> {
        Ok(self
            .view(view)?
            .iter()
            .take(limit)
            .map(|(v, m)| (v.clone(), m))
            .collect())
    }

    /// Total cardinality of a view.
    pub fn cardinality(&self, view: &str) -> Result<u64, ServeError> {
        Ok(self.view(view)?.cardinality())
    }

    /// Every view's frozen state as fully materialized *nested* bags, in
    /// name order — the checkpoint export seam. Durability persists views
    /// in nested form regardless of maintenance strategy: nesting resolves
    /// every label through the snapshot's frozen context dictionaries while
    /// the snapshot's pin still shields the slots involved, so nothing
    /// arena-dependent (and no possible `StaleVid`) reaches the encoder.
    /// Shredded views pay their one-time nesting here if no reader
    /// materialized them earlier.
    pub fn resolved_views(&self) -> Result<Vec<(String, Bag)>, ServeError> {
        self.views
            .iter()
            .map(|(name, snap)| Ok((name.clone(), snap.bag()?.clone())))
            .collect()
    }

    /// Look up the inner bag a label denotes in a *shredded* view's frozen
    /// context dictionaries (`None` when the label defines nothing there).
    /// Errors with [`ServeError::NotShredded`] for views maintained in
    /// nested form — they have no label indirection to resolve.
    pub fn lookup_label(&self, view: &str, label: &Label) -> Result<Option<Bag>, ServeError> {
        let snap = self
            .views
            .get(view)
            .ok_or_else(|| ServeError::UnknownView(view.to_owned()))?;
        match &snap.state {
            ViewStateSnapshot::Nested(_) => Err(ServeError::NotShredded(view.to_owned())),
            ViewStateSnapshot::Shredded { ctx, .. } => Ok(label_in_ctx(ctx, label)),
        }
    }
}

/// Find a label's definition in a context value (a tuple tree of
/// dictionaries).
fn label_in_ctx(ctx: &Value, label: &Label) -> Option<Bag> {
    match ctx {
        Value::Tuple(cs) => cs.iter().find_map(|c| label_in_ctx(c, label)),
        Value::Dict(d) => d.get(label).cloned(),
        _ => None,
    }
}

/// The single-writer publication point: an `Arc` swap guarded by a briefly
/// held lock, versioned so readers can skip the lock entirely while
/// nothing new was published (see the module docs for the protocol).
pub(crate) struct PublishCell {
    /// Bumped (Release) *after* the swap: a reader observing version `n`
    /// is guaranteed to find at least the `n`-th snapshot in `current`.
    version: AtomicU64,
    current: RwLock<Arc<Snapshot>>,
}

impl PublishCell {
    pub(crate) fn new(initial: Arc<Snapshot>) -> PublishCell {
        PublishCell {
            version: AtomicU64::new(1),
            current: RwLock::new(initial),
        }
    }

    /// Install a new snapshot (writer side; O(1) under the write lock).
    pub(crate) fn publish(&self, snap: Arc<Snapshot>) {
        *self.current.write().expect("publish cell") = snap;
        self.version.fetch_add(1, Ordering::Release);
    }

    /// The current version and snapshot.
    pub(crate) fn load(&self) -> (u64, Arc<Snapshot>) {
        let version = self.version.load(Ordering::Acquire);
        let snap = self.current.read().expect("publish cell").clone();
        (version, snap)
    }
}

/// A reader's handle onto the published snapshot sequence.
///
/// Cheap to clone (one per reader thread); [`SnapshotReader::current`]
/// costs a single atomic load while the published snapshot is unchanged —
/// the lock-free steady state — and one shared read-lock `Arc` clone when a
/// new snapshot was published. Holding the returned `Arc<Snapshot>` keeps
/// that state readable for as long as the reader needs it, no matter how
/// far the writer advances.
#[must_use = "a reader only serves reads while it is polled"]
pub struct SnapshotReader {
    cell: Arc<PublishCell>,
    seen: u64,
    cached: Arc<Snapshot>,
    /// This reader's private shard of the `serve.read.ns` histogram,
    /// created on the first timed read: recording never contends with other
    /// readers' cache lines, and the registry merges all shards at
    /// snapshot time.
    read_ns: Option<Arc<nrc_obs::Histogram>>,
}

impl Clone for SnapshotReader {
    fn clone(&self) -> SnapshotReader {
        SnapshotReader {
            cell: Arc::clone(&self.cell),
            seen: self.seen,
            cached: Arc::clone(&self.cached),
            // The clone serves a different thread: it gets its own shard.
            read_ns: None,
        }
    }
}

impl SnapshotReader {
    pub(crate) fn new(cell: Arc<PublishCell>) -> SnapshotReader {
        let (seen, cached) = cell.load();
        SnapshotReader {
            cell,
            seen,
            cached,
            read_ns: None,
        }
    }

    /// The most recently published snapshot. One atomic load when nothing
    /// new was published since the last call; otherwise refreshes the
    /// cached `Arc` under the shared read lock.
    pub fn current(&mut self) -> &Arc<Snapshot> {
        let version = self.cell.version.load(Ordering::Acquire);
        if version != self.seen {
            let (seen, snap) = self.cell.load();
            self.seen = seen;
            self.cached = snap;
        }
        &self.cached
    }

    /// An owned handle to the most recently published snapshot.
    pub fn snapshot(&mut self) -> Arc<Snapshot> {
        Arc::clone(self.current())
    }

    /// This reader's `serve.read.ns` shard, created on first use.
    fn read_hist(&mut self) -> &nrc_obs::Histogram {
        self.read_ns
            .get_or_insert_with(|| nrc_obs::histogram_shard("serve.read.ns"))
    }

    /// Timed point lookup against the current snapshot: the multiplicity of
    /// `v` in the view. The latency (snapshot refresh included — that *is*
    /// part of what a reader waits for) lands in this reader's private
    /// `serve.read.ns` histogram shard.
    pub fn get(&mut self, view: &str, v: &Value) -> Result<i64, ServeError> {
        let t = nrc_obs::enabled().then(std::time::Instant::now);
        let result = self.current().get(view, v);
        if let Some(t) = t {
            let ns = t.elapsed().as_nanos() as u64;
            self.read_hist().record(ns);
        }
        result
    }

    /// Timed ordered scan of up to `limit` pairs (see [`Snapshot::scan`]);
    /// latency recorded like [`SnapshotReader::get`].
    pub fn scan(&mut self, view: &str, limit: usize) -> Result<Vec<(Value, i64)>, ServeError> {
        let t = nrc_obs::enabled().then(std::time::Instant::now);
        let result = self.current().scan(view, limit);
        if let Some(t) = t {
            let ns = t.elapsed().as_nanos() as u64;
            self.read_hist().record(ns);
        }
        result
    }

    /// Timed view cardinality (see [`Snapshot::cardinality`]); latency
    /// recorded like [`SnapshotReader::get`].
    pub fn cardinality(&mut self, view: &str) -> Result<u64, ServeError> {
        let t = nrc_obs::enabled().then(std::time::Instant::now);
        let result = self.current().cardinality(view);
        if let Some(t) = t {
            let ns = t.elapsed().as_nanos() as u64;
            self.read_hist().record(ns);
        }
        result
    }
}
