//! Serving-layer error type.

use nrc_engine::EngineError;
use std::fmt;

/// Errors raised by the serving layer.
///
/// `Clone` on purpose: a [`crate::Snapshot`] caches the (rare) failure of
/// its on-demand nesting alongside the success case, and every reader of
/// that snapshot observes the same cached outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// An engine error (registration, batch application, nesting).
    Engine(EngineError),
    /// The named view is not part of the snapshot / system.
    UnknownView(String),
    /// A label lookup was issued against a view that is not maintained
    /// shredded (only shredded views carry context dictionaries).
    NotShredded(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::UnknownView(v) => write!(f, "unknown view {v}"),
            ServeError::NotShredded(v) => {
                write!(
                    f,
                    "view {v} is not shredded: no label dictionaries to look up"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// Lower a serving-layer error into the engine error it wraps (or the
/// closest engine-level description), so the text-registration passthroughs
/// can surface everything through the unified `NrcError`.
pub fn serve_to_engine(e: ServeError) -> EngineError {
    match e {
        ServeError::Engine(inner) => inner,
        ServeError::UnknownView(v) => EngineError::UnknownView(v),
        ServeError::NotShredded(v) => {
            EngineError::WrongStrategy(format!("view {v} is not shredded"))
        }
    }
}
