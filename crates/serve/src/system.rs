//! [`ServingSystem`] — the single-writer / many-reader serving runtime.
//!
//! Wraps an [`IvmSystem`] behind a publication protocol: the owning thread
//! ingests updates ([`ServingSystem::apply_batch`]) exactly as before, and
//! at every *successful* quiescent batch boundary an immutable
//! [`Snapshot`] of all registered views is atomically published. Reader
//! threads hold [`SnapshotReader`]s and do point lookups, scans and label
//! lookups against frozen, internally consistent state with zero writer
//! contention — see `crate` docs for the full protocol and safety
//! argument.

use crate::error::serve_to_engine;
use crate::error::ServeError;
use crate::feed::{FeedDelta, FeedShared, Subscription};
use crate::snapshot::{PublishCell, Snapshot, SnapshotLedger, SnapshotReader};
use nrc_core::Expr;
use nrc_data::{intern, Bag};
use nrc_engine::{
    BatchStats, CollectPolicy, EngineError, IvmSystem, NrcError, Parallelism, QueryPlan, Strategy,
    UpdateBatch,
};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::{Arc, Weak};

/// Serving-layer tunables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ServeOptions {
    /// Snapshot TTL for leak detection: a live snapshot more than this many
    /// batches older than the published one is counted in the
    /// `serve.snapshots.leak_suspects` gauge and listed in
    /// [`ServeStats::leak_suspects`]. `None` (the default) disables the
    /// check. Purely observational — old snapshots are never invalidated;
    /// the point is making a leaked [`SnapshotReader`] that pins the GC
    /// horizon visible instead of silent.
    pub max_snapshot_age_batches: Option<u64>,
}

/// One snapshot population flagged by the snapshot-TTL check: every live
/// snapshot published at `batch_index` is `age_batches` behind the current
/// publication, past [`ServeOptions::max_snapshot_age_batches`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct LeakSuspect {
    /// The batch index the suspect snapshots were published at.
    pub batch_index: u64,
    /// How many batches behind the published snapshot they are.
    pub age_batches: u64,
    /// How many live snapshots of that vintage exist.
    pub snapshots: u64,
}

/// Counters describing the serving layer, in the spirit of
/// [`BatchStats`] for the batch path.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ServeStats {
    /// Snapshots published (one per successful batch, registration, or
    /// explicit republish).
    pub snapshots_published: u64,
    /// Batch index of the currently published snapshot.
    pub published_batch_index: u64,
    /// Snapshots currently alive anywhere in the process — the *snapshot
    /// backlog*. Always ≥ 1: the publication cell itself holds the newest.
    /// Every outstanding snapshot pins its epoch, so a growing backlog of
    /// old snapshots is what holds the GC horizon back.
    pub outstanding_snapshots: u64,
    /// The process-wide pin horizon ([`intern::pin_horizon`]) at the time
    /// the stats were taken: the oldest epoch any pin (snapshots included)
    /// still shields from collection. `0` when nothing is pinned.
    pub pin_horizon_epoch: u64,
    /// How many batches behind the published snapshot the *oldest* live
    /// snapshot is (`published_batch_index − its batch index`; 0 when no
    /// snapshot is alive). A leaked [`SnapshotReader`] holding an ancient
    /// snapshot pins the GC horizon forever — a monotonically growing age
    /// under steady ingest is exactly that leak made observable.
    pub oldest_snapshot_age_batches: u64,
    /// Live subscriptions (slots whose consumer handle is still alive).
    pub subscribers: u64,
    /// Feed deltas pushed to subscribers over the system's lifetime.
    pub feed_deltas_pushed: u64,
    /// Feed deltas lost to bounded-queue backpressure (drop-oldest laps).
    pub feed_deltas_dropped: u64,
    /// The configured snapshot TTL the leak check ran with (`None` = check
    /// disabled, [`ServeStats::leak_suspects`] always empty).
    pub max_snapshot_age_batches: Option<u64>,
    /// Live snapshots older than the TTL, grouped by publication batch
    /// index (ascending — oldest vintage first).
    pub leak_suspects: Vec<LeakSuspect>,
}

/// Cached handles to the serving layer's registry metrics (one lookup per
/// process, relaxed atomics afterwards).
struct ServeMetrics {
    published: std::sync::Arc<nrc_obs::Counter>,
    publish_ns: std::sync::Arc<nrc_obs::Histogram>,
    outstanding: std::sync::Arc<nrc_obs::Gauge>,
    oldest_age: std::sync::Arc<nrc_obs::Gauge>,
    leak_suspects: std::sync::Arc<nrc_obs::Gauge>,
    feed_pushed: std::sync::Arc<nrc_obs::Counter>,
    feed_dropped: std::sync::Arc<nrc_obs::Counter>,
}

fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: std::sync::LazyLock<ServeMetrics> = std::sync::LazyLock::new(|| ServeMetrics {
        published: nrc_obs::counter("serve.snapshots.published"),
        publish_ns: nrc_obs::histogram("serve.snapshots.publish_ns"),
        outstanding: nrc_obs::gauge("serve.snapshots.outstanding"),
        oldest_age: nrc_obs::gauge("serve.snapshots.oldest_age_batches"),
        leak_suspects: nrc_obs::gauge("serve.snapshots.leak_suspects"),
        feed_pushed: nrc_obs::counter("serve.feed.pushed"),
        feed_dropped: nrc_obs::counter("serve.feed.dropped"),
    });
    &METRICS
}

/// A writer-side subscription slot. Weak on purpose: dropping the
/// [`Subscription`] is the unsubscribe — the writer prunes dead slots at
/// the next batch boundary.
struct SubSlot {
    view: String,
    feed: Weak<FeedShared>,
}

/// The single-writer / many-reader serving runtime (see module docs).
pub struct ServingSystem {
    engine: IvmSystem,
    cell: Arc<PublishCell>,
    ledger: Arc<SnapshotLedger>,
    subs: Vec<SubSlot>,
    /// Did the subscriber set change since the engine's capture-view set
    /// was last synced? (Avoids rebuilding the set on every batch.)
    subs_dirty: bool,
    /// Offset added to the engine's in-memory batch counter wherever a
    /// batch index is exposed to feeds. The durable layer recovers its
    /// engine *from a checkpoint*, so the engine counts from the
    /// checkpoint while the stream's indices are absolute; setting the
    /// base to the checkpoint index keeps feed indices stream-absolute
    /// across recovery (and lets backfilled history splice in seamlessly).
    batch_index_base: u64,
    snapshots_published: u64,
    feed_pushed: u64,
    feed_dropped: u64,
    options: ServeOptions,
}

impl ServingSystem {
    /// Wrap an engine (with or without views registered yet) and publish
    /// the initial snapshot.
    pub fn new(engine: IvmSystem) -> Result<ServingSystem, ServeError> {
        Self::new_with(engine, ServeOptions::default())
    }

    /// Like [`ServingSystem::new`], with explicit [`ServeOptions`].
    pub fn new_with(engine: IvmSystem, options: ServeOptions) -> Result<ServingSystem, ServeError> {
        let ledger = Arc::new(SnapshotLedger::new());
        let initial = Self::build_snapshot(&engine, &ledger)?;
        Ok(ServingSystem {
            engine,
            cell: Arc::new(PublishCell::new(Arc::new(initial))),
            ledger,
            subs: Vec::new(),
            subs_dirty: false,
            batch_index_base: 0,
            snapshots_published: 1,
            feed_pushed: 0,
            feed_dropped: 0,
            options,
        })
    }

    /// Change the serving options (takes effect from the next publication /
    /// stats call).
    pub fn set_serve_options(&mut self, options: ServeOptions) {
        self.options = options;
    }

    /// The current serving options.
    #[must_use]
    pub fn serve_options(&self) -> ServeOptions {
        self.options
    }

    /// Register a view under a maintenance strategy and republish, so
    /// readers immediately see the new view's initial materialization.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        query: Expr,
        strategy: Strategy,
    ) -> Result<(), ServeError> {
        self.engine.register(name, query, strategy)?;
        self.publish()
    }

    /// Register a view from NRC⁺ query text with an auto-picked strategy
    /// (see [`IvmSystem::register_query`]) and republish, so readers
    /// immediately see the new view's initial materialization.
    pub fn register_query(&mut self, name: &str, src: &str) -> Result<QueryPlan, NrcError> {
        let plan = self.engine.register_query(name, src)?;
        self.publish()
            .map_err(|e| NrcError::engine(serve_to_engine(e), src))?;
        Ok(plan)
    }

    /// Register a view from NRC⁺ query text under a forced strategy (see
    /// [`IvmSystem::register_query_with`]) and republish.
    pub fn register_query_with(
        &mut self,
        name: &str,
        src: &str,
        strategy: Strategy,
    ) -> Result<QueryPlan, NrcError> {
        let plan = self.engine.register_query_with(name, src, strategy)?;
        self.publish()
            .map_err(|e| NrcError::engine(serve_to_engine(e), src))?;
        Ok(plan)
    }

    /// Apply a coalesced batch of updates, publish the post-batch
    /// snapshot, and fan the per-view deltas out to subscribers.
    ///
    /// On an engine error nothing is published — the previously published
    /// snapshot stays current (the engine may have partially applied
    /// earlier segments; see [`IvmSystem::apply_batch`]; use
    /// [`ServingSystem::republish`] to surface that state deliberately) —
    /// and no feed delta is delivered for the failed batch. The loss is
    /// *counted*: every live subscription's [`Subscription::dropped`] is
    /// bumped, so a consumer's Σ-of-deltas invariant is guaranteed exactly
    /// while `dropped()` stays 0 and any failure tells it to resync from a
    /// fresh snapshot.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<(), ServeError> {
        // Own the flight-recorder trace when serving is the outermost layer
        // (so the publish span below lands in it); under `DurableSystem`
        // the durable scope is already open and this only nests.
        let _trace = nrc_obs::trace::guard(self.feed_batch_index() + 1);
        self.prune_subscribers();
        // Capture costs nothing for views nobody is listening to; the
        // engine's capture set is re-synced only when subscriptions
        // changed, not per batch.
        if self.subs_dirty {
            let subscribed: std::collections::BTreeSet<String> =
                self.subs.iter().map(|s| s.view.clone()).collect();
            self.engine.set_delta_capture_views(subscribed);
            self.subs_dirty = false;
        }
        let capturing = self.engine.delta_capture();
        if let Err(e) = self.engine.apply_batch(batch) {
            if capturing {
                self.mark_feed_loss();
            }
            return Err(e.into());
        }
        self.publish()?;
        if capturing {
            let deltas = self.engine.take_view_deltas();
            self.fan_out(&deltas);
        }
        Ok(())
    }

    /// A captured batch failed mid-application: no trustworthy per-view
    /// delta exists, so count the loss on every live subscription.
    fn mark_feed_loss(&mut self) {
        for slot in &self.subs {
            if let Some(feed) = slot.feed.upgrade() {
                feed.note_lost();
                self.feed_dropped += 1;
                if nrc_obs::enabled() {
                    serve_metrics().feed_dropped.inc();
                }
            }
        }
    }

    /// Convenience single-update ingestion: a one-update batch, so
    /// publication and feeds behave exactly as for
    /// [`ServingSystem::apply_batch`].
    pub fn apply_update(&mut self, rel: impl Into<String>, delta: Bag) -> Result<(), ServeError> {
        let mut batch = UpdateBatch::new();
        batch.push(rel, delta);
        self.apply_batch(&batch)
    }

    /// Set the feed batch-index base (see the field docs). Recovery-time
    /// plumbing: call before any batch is applied through this instance.
    pub fn set_batch_index_base(&mut self, base: u64) {
        self.batch_index_base = base;
    }

    /// The batch index feeds stamp next: base + the engine's counter.
    fn feed_batch_index(&self) -> u64 {
        self.batch_index_base + self.engine.batch_stats().batches_applied
    }

    /// Push one batch's captured deltas to every live subscriber of the
    /// matching view.
    fn fan_out(&mut self, deltas: &BTreeMap<String, Bag>) {
        let batch_index = self.feed_batch_index();
        let obs_on = nrc_obs::enabled();
        for slot in &self.subs {
            let Some(feed) = slot.feed.upgrade() else {
                continue;
            };
            let delta = deltas.get(&slot.view).cloned().unwrap_or_default();
            let lapped = feed.push(FeedDelta { batch_index, delta });
            self.feed_pushed += 1;
            if lapped {
                self.feed_dropped += 1;
            }
            if obs_on {
                serve_metrics().feed_pushed.inc();
                if lapped {
                    serve_metrics().feed_dropped.inc();
                }
            }
        }
    }

    /// Take and publish a fresh snapshot of the current engine state (also
    /// runs automatically after every successful batch / registration).
    pub fn republish(&mut self) -> Result<(), ServeError> {
        self.publish()
    }

    fn publish(&mut self) -> Result<(), ServeError> {
        let t = nrc_obs::enabled().then(std::time::Instant::now);
        let snap = Self::build_snapshot(&self.engine, &self.ledger)?;
        let batch_index = snap.batch_index();
        self.cell.publish(Arc::new(snap));
        self.snapshots_published += 1;
        if let Some(t) = t {
            let ns = t.elapsed().as_nanos() as u64;
            serve_metrics().published.inc();
            serve_metrics().publish_ns.record(ns);
            nrc_obs::trace::span("publish", format!("batch={batch_index}"), ns);
            self.export_snapshot_gauges(batch_index);
        }
        Ok(())
    }

    /// Mirror the snapshot-backlog state (and the TTL leak check) to the
    /// registry so one metrics snapshot sees it without polling
    /// [`ServingSystem::serve_stats`].
    fn export_snapshot_gauges(&self, published_batch_index: u64) {
        let m = serve_metrics();
        m.outstanding.set_u64(self.ledger.outstanding());
        m.oldest_age.set_u64(
            self.ledger
                .oldest_batch()
                .map_or(0, |oldest| published_batch_index.saturating_sub(oldest)),
        );
        let suspects: u64 = self
            .leak_suspects(published_batch_index)
            .iter()
            .map(|s| s.snapshots)
            .sum();
        m.leak_suspects.set_u64(suspects);
    }

    /// The snapshot-TTL check: live snapshot vintages older than
    /// [`ServeOptions::max_snapshot_age_batches`] (empty when unset).
    fn leak_suspects(&self, published_batch_index: u64) -> Vec<LeakSuspect> {
        let Some(limit) = self.options.max_snapshot_age_batches else {
            return Vec::new();
        };
        self.ledger
            .census()
            .into_iter()
            .filter_map(|(batch_index, snapshots)| {
                let age_batches = published_batch_index.saturating_sub(batch_index);
                (age_batches > limit).then_some(LeakSuspect {
                    batch_index,
                    age_batches,
                    snapshots,
                })
            })
            .collect()
    }

    /// Freeze every registered view (O(views) `Arc` bumps) under a fresh
    /// epoch pin.
    fn build_snapshot(
        engine: &IvmSystem,
        ledger: &Arc<SnapshotLedger>,
    ) -> Result<Snapshot, ServeError> {
        // Pin first: anything that dies from here on stays resolvable for
        // the snapshot's lifetime, on top of the retains its maps hold.
        let pin = intern::pin();
        let names: Vec<String> = engine.view_names().cloned().collect();
        let mut views = BTreeMap::new();
        for name in names {
            let state = engine.view_state(&name)?;
            views.insert(name, state);
        }
        Ok(Snapshot::new(
            engine.batch_stats().batches_applied,
            views,
            pin,
            ledger,
        ))
    }

    /// An owned handle to the currently published snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.cell.load().1
    }

    /// A reader handle for another thread: lock-free repeat reads of the
    /// current snapshot, refreshed on publication (see [`SnapshotReader`]).
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader::new(Arc::clone(&self.cell))
    }

    /// Subscribe to a view's per-batch change feed over a bounded queue of
    /// `capacity` deltas (clamped to ≥ 1; see [`Subscription`] for the
    /// delivery and drop-oldest backpressure semantics). Dropping the
    /// returned subscription unsubscribes.
    pub fn subscribe(&mut self, view: &str, capacity: usize) -> Result<Subscription, ServeError> {
        self.subscribe_with_history(view, capacity, Vec::new())
    }

    /// Subscribe to a view's change feed with a preloaded **history**: the
    /// given deltas are queued (oldest first) before any live delta, and
    /// the capacity is clamped so none of them is dropped at creation.
    /// This is the feed replay hook durable backfill uses — the history it
    /// synthesizes starts with a batch-index-0 delta carrying the view's
    /// full state at stream origin (its change *from nothing*), so folding
    /// the feed from the empty bag reproduces every historical state and
    /// `from_batch` is the index just before the first queued delta.
    pub fn subscribe_with_history(
        &mut self,
        view: &str,
        capacity: usize,
        history: Vec<FeedDelta>,
    ) -> Result<Subscription, ServeError> {
        if !self.engine.view_names().any(|n| n == view) {
            return Err(ServeError::UnknownView(view.to_owned()));
        }
        let from_batch = match history.first() {
            Some(first) => first.batch_index.saturating_sub(1),
            None => self.feed_batch_index(),
        };
        let capacity = capacity.max(history.len()).max(1);
        let (sub, shared) = Subscription::new(view, capacity, from_batch);
        self.feed_pushed += history.len() as u64;
        if nrc_obs::enabled() {
            serve_metrics().feed_pushed.add(history.len() as u64);
        }
        for delta in history {
            shared.push(delta);
        }
        self.subs.push(SubSlot {
            view: view.to_owned(),
            feed: Arc::downgrade(&shared),
        });
        self.subs_dirty = true;
        Ok(sub)
    }

    /// Drop subscription slots whose consumer handle is gone.
    fn prune_subscribers(&mut self) {
        let before = self.subs.len();
        self.subs.retain(|s| s.feed.strong_count() > 0);
        if self.subs.len() != before {
            self.subs_dirty = true;
        }
    }

    /// Live subscriptions (pruning dead slots first).
    pub fn subscriber_count(&mut self) -> usize {
        self.prune_subscribers();
        self.subs.len()
    }

    /// Serving-layer counters (snapshot backlog, pin horizon, feed
    /// delivery/drop totals).
    #[must_use]
    pub fn serve_stats(&self) -> ServeStats {
        let published_batch_index = self.snapshot().batch_index();
        let leak_suspects = self.leak_suspects(published_batch_index);
        if nrc_obs::enabled() {
            // Stats polling doubles as a gauge refresh: readers may have
            // dropped (or leaked further) since the last publication.
            self.export_snapshot_gauges(published_batch_index);
        }
        ServeStats {
            snapshots_published: self.snapshots_published,
            published_batch_index,
            outstanding_snapshots: self.ledger.outstanding(),
            pin_horizon_epoch: intern::pin_horizon().map_or(0, |e| e.0),
            oldest_snapshot_age_batches: self
                .ledger
                .oldest_batch()
                .map_or(0, |oldest| published_batch_index.saturating_sub(oldest)),
            subscribers: self
                .subs
                .iter()
                .filter(|s| s.feed.strong_count() > 0)
                .count() as u64,
            feed_deltas_pushed: self.feed_pushed,
            feed_deltas_dropped: self.feed_dropped,
            max_snapshot_age_batches: self.options.max_snapshot_age_batches,
            leak_suspects,
        }
    }

    /// Read access to the wrapped engine (views, stats, database).
    #[must_use]
    pub fn engine(&self) -> &IvmSystem {
        &self.engine
    }

    /// Unwrap back into the engine, abandoning publication state. Any
    /// outstanding snapshots and readers stay valid (they own their data);
    /// they just stop seeing new publications.
    #[must_use]
    pub fn into_engine(self) -> IvmSystem {
        self.engine
    }

    /// Counters for the engine's batched maintenance path.
    #[must_use]
    pub fn batch_stats(&self) -> &BatchStats {
        self.engine.batch_stats()
    }

    /// Select how batches refresh views (see [`IvmSystem::set_parallelism`]).
    pub fn set_parallelism(&mut self, mode: Parallelism) {
        self.engine.set_parallelism(mode);
    }

    /// Select when memory is reclaimed (see [`IvmSystem::set_collect_policy`]).
    /// Outstanding snapshots bound every policy: a slot resolvable through
    /// a live snapshot is never freed.
    pub fn set_collect_policy(&mut self, policy: CollectPolicy) {
        self.engine.set_collect_policy(policy);
    }

    /// Immediate full collection (see [`IvmSystem::collect_now`]).
    pub fn collect_now(&mut self) -> u64 {
        self.engine.collect_now()
    }

    /// One bounded collection increment (see [`IvmSystem::collect_bounded`]).
    pub fn collect_bounded(&mut self, max_slots: u64) -> u64 {
        self.engine.collect_bounded(max_slots)
    }

    /// The current contents of a view *through the engine* (readers should
    /// prefer [`ServingSystem::snapshot`] /
    /// [`ServingSystem::reader`] — this accessor exists for
    /// writer-side checks and tests).
    pub fn view(&self, name: &str) -> Result<Bag, EngineError> {
        self.engine.view(name)
    }
}
