//! Per-view change feeds: bounded subscription channels carrying the
//! coalesced per-batch deltas the engine's capture hook records.
//!
//! Semantics:
//!
//! * every successfully applied batch delivers exactly one [`FeedDelta`]
//!   per subscription — including batches that left the view unchanged
//!   (an empty delta), so consumers can detect gaps purely from
//!   `batch_index` continuity;
//! * the queue is **bounded**: when a slow consumer lets it fill, the
//!   *oldest* undelivered delta is dropped to admit the new one
//!   (drop-oldest, "lapping"), deterministically — there is exactly one
//!   writer, so which delta is lost is a pure function of the
//!   publish/consume interleaving. [`Subscription::dropped`] counts the
//!   losses and the `batch_index` gap shows the consumer *where* — the
//!   standard resync is to take a fresh snapshot and continue from its
//!   batch index;
//! * a batch that **fails mid-application** delivers no delta (the
//!   engine's partial segment state has no trustworthy per-view change),
//!   but it still counts against [`Subscription::dropped`], so the
//!   Σ-of-deltas invariant below is guaranteed exactly when `dropped()`
//!   is 0 — any loss, lap or failure alike, tells the consumer to
//!   resync;
//! * dropping the [`Subscription`] unsubscribes: the writer prunes the
//!   slot at the next batch boundary and stops capturing deltas when no
//!   subscriber remains.

use nrc_data::Bag;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One batch's coalesced change to a subscribed view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FeedDelta {
    /// The engine batch index this delta belongs to: applying it on top of
    /// the view state at `batch_index - 1` yields the state at
    /// `batch_index`.
    pub batch_index: u64,
    /// The coalesced change (`∅` when the batch left the view unchanged).
    /// Per-batch view deltas are the archetypal transient small-tier bag:
    /// cloning one for fan-out is a flat memcpy plus a dense retain pass,
    /// and a consumer's `union_assign` replay is a linear run merge.
    pub delta: Bag,
}

/// The writer/consumer-shared half of one subscription.
pub(crate) struct FeedShared {
    queue: Mutex<VecDeque<FeedDelta>>,
    capacity: usize,
    dropped: AtomicU64,
    delivered: AtomicU64,
}

impl FeedShared {
    /// Enqueue one delta, dropping the oldest entry when full. Returns
    /// whether an entry was dropped (the consumer got lapped).
    pub(crate) fn push(&self, item: FeedDelta) -> bool {
        let mut queue = self.queue.lock().expect("feed queue");
        let lapped = queue.len() >= self.capacity;
        if lapped {
            queue.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        queue.push_back(item);
        self.delivered.fetch_add(1, Ordering::Relaxed);
        lapped
    }

    /// Record a batch whose delta was lost before delivery (the engine
    /// failed mid-application, so no trustworthy per-view delta exists).
    /// Counts toward [`Subscription::dropped`] exactly like a lap: the
    /// consumer's Σ-of-deltas invariant is broken until it resyncs from a
    /// fresh snapshot.
    pub(crate) fn note_lost(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// A consumer's handle onto one view's change feed (see the module docs
/// for delivery and backpressure semantics). Dropping it unsubscribes.
#[must_use = "an unpolled subscription only accumulates (and eventually drops) deltas"]
pub struct Subscription {
    shared: Arc<FeedShared>,
    view: String,
    from_batch: u64,
}

impl Subscription {
    /// Create the subscription plus the writer's shared handle.
    pub(crate) fn new(
        view: &str,
        capacity: usize,
        from_batch: u64,
    ) -> (Subscription, Arc<FeedShared>) {
        let shared = Arc::new(FeedShared {
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            dropped: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
        });
        (
            Subscription {
                shared: Arc::clone(&shared),
                view: view.to_owned(),
                from_batch,
            },
            shared,
        )
    }

    /// The subscribed view.
    #[must_use]
    pub fn view(&self) -> &str {
        &self.view
    }

    /// The engine batch index at subscription time: the feed carries the
    /// deltas of every batch *after* this index, so `state(from_batch) ⊎
    /// Σ deltas = state(latest delivered batch)`.
    #[must_use]
    pub fn from_batch(&self) -> u64 {
        self.from_batch
    }

    /// Maximum undelivered deltas held before the oldest is dropped.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Pop the oldest undelivered delta, if any.
    pub fn try_recv(&self) -> Option<FeedDelta> {
        self.shared.queue.lock().expect("feed queue").pop_front()
    }

    /// Pop everything currently queued, oldest first.
    pub fn drain(&self) -> Vec<FeedDelta> {
        self.shared
            .queue
            .lock()
            .expect("feed queue")
            .drain(..)
            .collect()
    }

    /// Undelivered deltas currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.queue.lock().expect("feed queue").len()
    }

    /// Is the queue currently empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deltas lost to backpressure over this subscription's lifetime.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Deltas the writer pushed over this subscription's lifetime
    /// (delivered or later dropped).
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.shared.delivered.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrc_data::Value;

    fn delta(i: u64) -> FeedDelta {
        FeedDelta {
            batch_index: i,
            delta: Bag::from_values([Value::int(i as i64)]),
        }
    }

    #[test]
    fn bounded_queue_drops_oldest_deterministically() {
        let (sub, shared) = Subscription::new("v", 3, 0);
        assert_eq!(sub.capacity(), 3);
        for i in 1..=3 {
            assert!(!shared.push(delta(i)), "queue not full yet");
        }
        // Two more: 1 and 2 are lapped away, deterministically the oldest.
        assert!(shared.push(delta(4)));
        assert!(shared.push(delta(5)));
        assert_eq!(sub.dropped(), 2);
        assert_eq!(sub.pushed(), 5);
        let got: Vec<u64> = sub.drain().into_iter().map(|d| d.batch_index).collect();
        assert_eq!(got, vec![3, 4, 5], "survivors are the newest, in order");
        // The batch_index gap (from_batch 0 → first delivered 3) is the
        // consumer's lap signal.
        assert!(sub.is_empty());
        assert_eq!(sub.try_recv(), None);
    }

    #[test]
    fn drain_and_try_recv_agree() {
        let (sub, shared) = Subscription::new("v", 8, 7);
        assert_eq!(sub.view(), "v");
        assert_eq!(sub.from_batch(), 7);
        shared.push(delta(8));
        shared.push(delta(9));
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.try_recv().unwrap().batch_index, 8);
        assert_eq!(sub.drain().len(), 1);
        assert_eq!(sub.dropped(), 0);
    }
}
