//! End-to-end tests of the serving layer: publication/read protocol,
//! snapshot isolation under concurrent ingest with live bounded GC,
//! subscription semantics, and the snapshot-pin/GC-horizon contract.
//!
//! The intern arena is process-global, so tests serialize among themselves
//! (pin-horizon and backlog assertions only hold while no sibling test
//! pins or publishes concurrently) and use test-unique payloads.

use nrc_core::builder::{cmp_lit, filter_query, related_query};
use nrc_core::expr::CmpOp;
use nrc_data::database::{example_movies, example_movies_update};
use nrc_data::{Bag, Value};
use nrc_engine::{CollectPolicy, IvmSystem, Parallelism, Strategy, UpdateBatch};
use nrc_serve::{ServeError, ServingSystem};
use nrc_workloads::{StreamConfig, StreamGen};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

fn movie(name: &str, genre: &str, dir: &str) -> Value {
    Value::Tuple(vec![Value::str(name), Value::str(genre), Value::str(dir)])
}

/// A serving system over the movies schema with one view per strategy.
fn serving_movies() -> ServingSystem {
    let mut serve = ServingSystem::new(IvmSystem::new(example_movies())).unwrap();
    let action = filter_query("M", cmp_lit("x", vec![1], CmpOp::Eq, "Action"));
    serve
        .register("fo", action.clone(), Strategy::FirstOrder)
        .unwrap();
    serve
        .register("re", action.clone(), Strategy::Reevaluate)
        .unwrap();
    serve.register("rc", action, Strategy::Recursive).unwrap();
    serve
        .register("sh", related_query(), Strategy::Shredded)
        .unwrap();
    serve
}

#[test]
fn publication_is_versioned_and_snapshots_are_isolated() {
    let _serial = serial();
    let mut serve = serving_movies();
    let mut reader = serve.reader();
    let s0 = reader.snapshot();
    let names: Vec<String> = s0.view_names().map(str::to_owned).collect();
    assert_eq!(names, vec!["fo", "rc", "re", "sh"], "sorted view names");
    // No publication: repeat polls return the very same Arc (the lock-free
    // steady state).
    assert!(Arc::ptr_eq(&s0, reader.current()));
    let fo_before = s0.view("fo").unwrap().clone();

    let mut batch = UpdateBatch::new();
    batch.push("M", Bag::from_values([movie("Heat-iso", "Action", "Mann")]));
    serve.apply_batch(&batch).unwrap();

    let s1 = reader.snapshot();
    assert!(!Arc::ptr_eq(&s0, &s1), "publication must swap the snapshot");
    assert_eq!(s1.batch_index(), s0.batch_index() + 1);
    // The old snapshot is frozen; the new one sees the insert.
    assert_eq!(s0.view("fo").unwrap(), &fo_before);
    assert_eq!(
        s1.get("fo", &movie("Heat-iso", "Action", "Mann")).unwrap(),
        1
    );
    assert_eq!(
        s0.get("fo", &movie("Heat-iso", "Action", "Mann")).unwrap(),
        0
    );
    // Scans are ordered and bounded.
    let scan = s1.scan("fo", 2).unwrap();
    assert_eq!(scan.len(), 2);
    assert!(scan[0].0 < scan[1].0, "scan follows the canonical order");
    // Unknown views are reported.
    assert!(matches!(
        s1.get("zzz", &Value::int(0)),
        Err(ServeError::UnknownView(_))
    ));
}

#[test]
fn concurrent_readers_agree_with_sequential_replay_under_bounded_gc() {
    let _serial = serial();
    const NBATCHES: usize = 24;
    let cfg = StreamConfig::ever_fresh(16, "serve-test-conc");
    let mut gen = StreamGen::new(7, cfg.clone());
    let db = gen.database(48);
    let mut sys = IvmSystem::new(db);
    sys.set_parallelism(Parallelism::Sequential);
    let q = filter_query("M", cmp_lit("x", vec![1], CmpOp::Eq, "genre0"));
    let mut serve = ServingSystem::new(sys).unwrap();
    serve
        .register("hot", q.clone(), Strategy::FirstOrder)
        .unwrap();
    serve.set_collect_policy(CollectPolicy::Bounded {
        max_slots: 24,
        every: 1,
    });

    let stop = AtomicBool::new(false);
    let observations: Mutex<Vec<(u64, Bag)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let mut reader = serve.reader();
            let stop = &stop;
            let observations = &observations;
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let snap = reader.current();
                    // Full iteration resolves every element id — a stale
                    // slot would panic deterministically here.
                    let bag = snap.view("hot").expect("view").clone();
                    let count = bag.iter().count();
                    assert_eq!(count, bag.distinct_count());
                    observations.lock().unwrap().push((snap.batch_index(), bag));
                    std::thread::yield_now();
                }
            });
        }
        for _ in 0..NBATCHES {
            let batch = UpdateBatch::from_updates(gen.next_batch());
            serve.apply_batch(&batch).expect("batch");
        }
        stop.store(true, Ordering::Release);
    });

    // Sequential replay of the identical stream, recording the view after
    // every batch; each observed (batch_index, contents) pair must match.
    let mut replay_gen = StreamGen::new(7, cfg);
    let replay_db = replay_gen.database(48);
    let mut replay = IvmSystem::new(replay_db);
    replay.set_parallelism(Parallelism::Sequential);
    replay.register("hot", q, Strategy::FirstOrder).unwrap();
    let mut states: Vec<Bag> = vec![replay.view("hot").unwrap()];
    for _ in 0..NBATCHES {
        let batch = UpdateBatch::from_updates(replay_gen.next_batch());
        replay.apply_batch(&batch).expect("replay batch");
        states.push(replay.view("hot").unwrap());
    }
    let observations = observations.into_inner().unwrap();
    assert!(!observations.is_empty(), "readers observed nothing");
    for (batch_index, bag) in observations {
        assert_eq!(
            &bag, &states[batch_index as usize],
            "a read diverged from sequential replay at batch {batch_index}"
        );
    }
}

#[test]
fn feed_deltas_sum_to_the_published_snapshot_state() {
    let _serial = serial();
    let mut serve = serving_movies();
    let sub_fo = serve.subscribe("fo", 64).unwrap();
    let sub_sh = serve.subscribe("sh", 64).unwrap();
    assert!(matches!(
        serve.subscribe("zzz", 4),
        Err(ServeError::UnknownView(_))
    ));
    let base_fo = serve.snapshot().view("fo").unwrap().clone();
    let base_sh = serve.snapshot().view("sh").unwrap().clone();

    let churn = [
        Bag::from_values([movie("Feed-A", "Action", "Mann")]),
        example_movies_update(),
        Bag::from_values([movie("Feed-A", "Action", "Mann")]).negate(),
        example_movies_update().negate(),
        Bag::from_values([movie("Feed-B", "Action", "Scott")]),
    ];
    for delta in churn {
        serve.apply_update("M", delta).unwrap();
    }

    for (sub, base, view) in [(&sub_fo, base_fo, "fo"), (&sub_sh, base_sh, "sh")] {
        let deltas = sub.drain();
        assert_eq!(deltas.len(), 5, "one delta per batch, empty ones included");
        let mut acc = base;
        let mut expect_index = sub.from_batch();
        for d in &deltas {
            expect_index += 1;
            assert_eq!(d.batch_index, expect_index, "{view}: contiguous feed");
            acc.union_assign(&d.delta);
        }
        assert_eq!(
            &acc,
            serve.snapshot().view(view).unwrap(),
            "{view}: base ⊎ Σ feed deltas must equal the published state"
        );
        assert_eq!(sub.dropped(), 0);
    }

    // Dropping the handle unsubscribes and releases the slot.
    assert_eq!(serve.subscriber_count(), 2);
    drop(sub_fo);
    assert_eq!(serve.subscriber_count(), 1);
    serve
        .apply_update("M", Bag::from_values([movie("Feed-C", "Action", "Mann")]))
        .unwrap();
    let stats = serve.serve_stats();
    assert_eq!(stats.subscribers, 1);
    drop(sub_sh);
    assert_eq!(serve.subscriber_count(), 0);
    // With nobody listening, capture shuts off again.
    serve
        .apply_update("M", Bag::from_values([movie("Feed-D", "Action", "Mann")]))
        .unwrap();
    assert!(!serve.engine().delta_capture());
}

#[test]
fn slow_consumers_lap_deterministically() {
    let _serial = serial();
    let mut serve = serving_movies();
    let sub = serve.subscribe("fo", 2).unwrap();
    for i in 0..5 {
        serve
            .apply_update(
                "M",
                Bag::from_values([movie(&format!("Lap-{i}"), "Action", "Mann")]),
            )
            .unwrap();
    }
    // Capacity 2, five pushes: the three oldest were lapped away.
    assert_eq!(sub.dropped(), 3);
    assert_eq!(sub.pushed(), 5);
    let got: Vec<u64> = sub.drain().iter().map(|d| d.batch_index).collect();
    let last = serve.batch_stats().batches_applied;
    assert_eq!(got, vec![last - 1, last], "survivors are the newest two");
    let stats = serve.serve_stats();
    assert_eq!(stats.feed_deltas_pushed, 5);
    assert_eq!(stats.feed_deltas_dropped, 3);
}

#[test]
fn failed_batches_count_as_feed_losses() {
    let _serial = serial();
    let mut serve = serving_movies();
    let sub = serve.subscribe("fo", 8).unwrap();
    // First segment applies, second hits an unknown relation: the engine
    // partially applied the batch, so no trustworthy delta exists.
    let mut batch = UpdateBatch::new();
    batch.push("M", Bag::from_values([movie("Fail-A", "Action", "Mann")]));
    batch.push("Zzz", Bag::from_values([Value::int(1)]));
    assert!(serve.apply_batch(&batch).is_err());
    assert!(
        sub.is_empty(),
        "no delta may be delivered for a failed batch"
    );
    assert_eq!(
        sub.dropped(),
        1,
        "the loss must be counted so the consumer knows to resync"
    );
    assert_eq!(serve.serve_stats().feed_deltas_dropped, 1);
    // A later successful batch delivers normally again.
    serve
        .apply_update("M", Bag::from_values([movie("Fail-B", "Action", "Mann")]))
        .unwrap();
    assert_eq!(sub.drain().len(), 1);
}

#[test]
fn capture_is_scoped_to_subscribed_views() {
    let _serial = serial();
    let mut serve = serving_movies();
    let sub = serve.subscribe("fo", 8).unwrap();
    serve
        .apply_update("M", Bag::from_values([movie("Scope-A", "Action", "Mann")]))
        .unwrap();
    // Only the subscribed view's delta is captured and delivered; the
    // expensive shredded diff never runs for the unsubscribed "sh".
    let deltas = sub.drain();
    assert_eq!(deltas.len(), 1);
    assert_eq!(
        deltas[0]
            .delta
            .multiplicity(&movie("Scope-A", "Action", "Mann")),
        1
    );
    drop(sub);
}

#[test]
fn snapshot_pins_hold_the_gc_horizon_and_drops_advance_it() {
    let _serial = serial();
    let mut serve = serving_movies();
    serve.set_collect_policy(CollectPolicy::Bounded {
        max_slots: 64,
        every: 1,
    });
    let oldest = serve.snapshot();
    let held = oldest.view("fo").unwrap().clone();
    let epoch0 = oldest.epoch();
    // Churn ever-fresh payloads: every batch creates garbage, collects a
    // bounded increment, and publishes a newer snapshot at a later epoch.
    for i in 0..6 {
        let name = format!("Pin-{i:03}");
        serve
            .apply_update("M", Bag::from_values([movie(&name, "Action", "Mann")]))
            .unwrap();
        serve
            .apply_update(
                "M",
                Bag::from_values([movie(&name, "Action", "Mann")]).negate(),
            )
            .unwrap();
    }
    let stats = serve.serve_stats();
    assert!(
        stats.outstanding_snapshots >= 2,
        "held + published snapshots must both count: {stats:?}"
    );
    assert_eq!(
        stats.pin_horizon_epoch, epoch0.0,
        "the oldest outstanding snapshot is the pin horizon"
    );
    // Everything in the held snapshot still resolves after all that GC.
    assert_eq!(oldest.view("fo").unwrap(), &held);
    drop(oldest);
    let stats = serve.serve_stats();
    assert!(
        stats.pin_horizon_epoch > epoch0.0,
        "dropping the oldest snapshot must advance the collectable horizon: {stats:?}"
    );
    assert!(stats.snapshots_published >= 13);
}

#[test]
fn oldest_snapshot_age_tracks_the_laggard_and_drops_advance_it() {
    let _serial = serial();
    let mut serve = serving_movies();
    let oldest = serve.snapshot(); // batch 0
    assert_eq!(serve.serve_stats().oldest_snapshot_age_batches, 0);
    for i in 0..4 {
        let name = format!("Age-{i:03}");
        serve
            .apply_update("M", Bag::from_values([movie(&name, "Action", "Mann")]))
            .unwrap();
    }
    let middle = serve.snapshot(); // batch 4
    serve
        .apply_update("M", Bag::from_values([movie("Age-mid", "Action", "Mann")]))
        .unwrap(); // published index now 5
    let stats = serve.serve_stats();
    assert_eq!(stats.published_batch_index, 5);
    assert_eq!(
        stats.oldest_snapshot_age_batches, 5,
        "a leaked pre-ingest snapshot ages one batch per publish: {stats:?}"
    );
    // Dropping the oldest snapshot advances the age to the next laggard…
    drop(oldest);
    assert_eq!(serve.serve_stats().oldest_snapshot_age_batches, 1);
    // …and with no held snapshots left, the published one is the oldest.
    drop(middle);
    assert_eq!(serve.serve_stats().oldest_snapshot_age_batches, 0);
}

#[test]
fn label_lookups_resolve_against_shredded_context_dictionaries() {
    let _serial = serial();
    let mut serve = serving_movies();
    serve.apply_update("M", example_movies_update()).unwrap();
    // The related view's flat tuples are <name, label>: pull one label out
    // of the frozen flat result and resolve it through the snapshot.
    let label = match serve.engine().view_state("sh").unwrap() {
        nrc_engine::ViewStateSnapshot::Shredded { flat, .. } => flat
            .iter()
            .next()
            .map(|(v, _)| v.project(1).unwrap().as_label().unwrap().clone())
            .expect("related has flat tuples"),
        other => panic!("sh must snapshot shredded, got {other:?}"),
    };
    let snap = serve.snapshot();
    let inner = snap
        .lookup_label("sh", &label)
        .unwrap()
        .expect("label must define a bag");
    assert!(inner.cardinality() > 0);
    assert!(matches!(
        snap.lookup_label("fo", &label),
        Err(ServeError::NotShredded(_))
    ));
    assert!(matches!(
        snap.lookup_label("zzz", &label),
        Err(ServeError::UnknownView(_))
    ));
}
