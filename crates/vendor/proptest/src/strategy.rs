//! Strategy trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// smaller structure and returns the strategy for the next level. The
    /// `depth` parameter bounds nesting; `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = recurse(current.clone()).boxed();
        }
        current
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

impl<V: std::fmt::Debug> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoxedStrategy")
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies ([`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given (non-empty) options.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.rng().gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! strategy_for_tuples {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Regex-lite string strategy: `&str` patterns like `"[a-d]{1,3}"` act as
/// generators. Supported syntax: literal characters, character classes with
/// ranges (`[a-z0-9_]`), and the quantifiers `{n}`, `{m,n}`, `?`, `+`, `*`
/// (the unbounded ones capped at 8 repetitions).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum Atom {
    Lit(char),
    Class(Vec<char>),
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut options = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in pattern {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("range start");
                            let hi = chars.next().expect("range end");
                            for x in lo..=hi {
                                options.push(x);
                            }
                        }
                        Some(x) => {
                            if let Some(p) = prev {
                                options.push(p);
                            }
                            prev = Some(x);
                        }
                    }
                }
                if let Some(p) = prev {
                    options.push(p);
                }
                assert!(
                    !options.is_empty(),
                    "empty character class in pattern {pattern:?}"
                );
                Atom::Class(options)
            }
            '\\' => Atom::Lit(chars.next().expect("escaped character")),
            c => Atom::Lit(c),
        };
        // Optional quantifier.
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for x in chars.by_ref() {
                    if x == '}' {
                        break;
                    }
                    spec.push(x);
                }
                match spec.split_once(',') {
                    None => {
                        let n: usize = spec.parse().expect("numeric quantifier");
                        (n, n)
                    }
                    Some((a, b)) => {
                        let lo: usize = a.parse().expect("numeric quantifier");
                        let hi: usize = if b.is_empty() {
                            lo + 8
                        } else {
                            b.parse().expect("numeric quantifier")
                        };
                        (lo, hi)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            _ => (1, 1),
        };
        let count = if lo >= hi {
            lo
        } else {
            rng.rng().gen_range(lo..=hi)
        };
        for _ in 0..count {
            match &atom {
                Atom::Lit(c) => out.push(*c),
                Atom::Class(cs) => out.push(cs[rng.rng().gen_range(0..cs.len())]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let x = (-3i64..4).generate(&mut rng);
            assert!((-3..4).contains(&x));
        }
    }

    #[test]
    fn regex_lite_patterns() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..100 {
            let s = "[a-d]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&s.len()), "bad length: {s:?}");
            assert!(
                s.chars().all(|c| ('a'..='d').contains(&c)),
                "bad char: {s:?}"
            );
        }
        let lit = "ab\\[c".generate(&mut rng);
        assert_eq!(lit, "ab[c");
    }

    #[test]
    fn oneof_and_map_and_recursive_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = crate::prop_oneof![
            (0i64..10).prop_map(|x| x * 2),
            (100i64..110).prop_map(|x| x),
        ];
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v < 120);
        }
        let nested = (0i64..3).prop_recursive(2, 8, 2, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(|v| v.iter().sum::<i64>())
        });
        for _ in 0..20 {
            let _ = nested.generate(&mut rng);
        }
    }
}
