//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use: [`Strategy`] with `prop_map` / `prop_recursive` /
//! `boxed`, integer-range and regex-lite string strategies, tuple and
//! [`collection::vec`] combinators, [`prop_oneof!`], and the [`proptest!`]
//! test macro with `prop_assert!` / `prop_assert_eq!`.
//!
//! There is **no shrinking**: a failing case panics with the generated
//! inputs printed, which is enough to reproduce (generation is
//! deterministic per test name).

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Strategies for standard types (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.rng().gen()
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mix small values (where collisions and edge cases live)
                    // with full-width values.
                    let r = rng.rng();
                    if r.gen_bool(0.5) {
                        r.gen_range(-16i64..17) as $t
                    } else {
                        r.gen::<i64>() as $t
                    }
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, isize);

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    let r = rng.rng();
                    if r.gen_bool(0.5) {
                        r.gen_range(0i64..33) as $t
                    } else {
                        r.gen::<i64>() as $t
                    }
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector strategy: each element from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.rng().gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The exports a proptest-based test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    // Real proptest re-exports the crate as `prop` so paths like
    // `prop::collection::vec` work from the prelude.
    pub use crate as prop;
}

/// Pick one of several strategies uniformly. All arms must produce the same
/// value type; each arm is boxed.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property-test assertion: fail the current case (no panic unwinding
/// needed — the generated inputs are reported by the harness).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Property-test equality assertion (optionally with a custom message).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Define property tests. Each function runs `config.cases` times with
/// fresh inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                // Render inputs before the body gets a chance to move them.
                let inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:\n{}",
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}
