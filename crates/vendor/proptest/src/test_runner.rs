//! Test-runner support: config, RNG, case errors.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies. Deterministic per test name, so failures
/// reproduce without a persisted seed file.
#[derive(Clone, Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// A deterministic RNG keyed by `name` (usually the test path).
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name gives a stable 64-bit seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// Access the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Why a test case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed case with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.rng().gen_range(0u64..1000), b.rng().gen_range(0u64..1000));
    }
}
