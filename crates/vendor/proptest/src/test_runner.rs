//! Test-runner support: config, RNG, case errors.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases, ignoring the environment
    /// (for tests whose case count is semantically fixed).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// A config running `default_cases` cases unless the `PROPTEST_CASES`
    /// environment variable overrides it — upstream proptest's behavior, so
    /// CI can dial property depth without touching test sources. An unset
    /// or unparsable variable falls back to the default.
    pub fn with_cases_env(default_cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases: env_cases().unwrap_or(default_cases),
        }
    }
}

/// `PROPTEST_CASES` as a case count, when set and parsable.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

impl Default for ProptestConfig {
    /// 64 cases, overridable via `PROPTEST_CASES` like
    /// [`ProptestConfig::with_cases_env`].
    fn default() -> ProptestConfig {
        ProptestConfig::with_cases_env(64)
    }
}

/// The RNG handed to strategies. Deterministic per test name, so failures
/// reproduce without a persisted seed file.
#[derive(Clone, Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// A deterministic RNG keyed by `name` (usually the test path).
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name gives a stable 64-bit seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// Access the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Why a test case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed case with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn cases_respect_environment_override() {
        // One test owns the variable (this module has no other env readers
        // running concurrently against it).
        std::env::set_var("PROPTEST_CASES", "13");
        assert_eq!(ProptestConfig::with_cases_env(64).cases, 13);
        assert_eq!(ProptestConfig::default().cases, 13);
        // Exact counts ignore the environment.
        assert_eq!(ProptestConfig::with_cases(5).cases, 5);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(ProptestConfig::with_cases_env(7).cases, 7);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(ProptestConfig::with_cases_env(9).cases, 9);
        assert_eq!(ProptestConfig::default().cases, 64);
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.rng().gen_range(0u64..1000), b.rng().gen_range(0u64..1000));
    }
}
