//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled derives for the vendored `serde` crate's `Serialize` /
//! `Deserialize` traits, built directly on `proc_macro` (no `syn`/`quote`
//! available offline). Supports non-generic structs (named, tuple, unit) and
//! enums (unit, tuple, struct variants) — the only shapes this workspace
//! derives on.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a parsed item.
enum Item {
    Struct(String, Fields),
    Enum(String, Vec<(String, Fields)>),
}

/// Field list of a struct or enum variant.
enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (count).
    Tuple(usize),
    /// No fields.
    Unit,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct(name, fields) => {
            let expr = match fields {
                Fields::Named(fs) => object_expr(fs, "self.", ""),
                Fields::Tuple(n) => {
                    let parts: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                        .collect();
                    if *n == 1 {
                        parts.into_iter().next().unwrap()
                    } else {
                        format!("::serde::Json::Array(vec![{}])", parts.join(", "))
                    }
                }
                Fields::Unit => "::serde::Json::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> ::serde::Json {{ {expr} }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                let arm = match fields {
                    Fields::Unit => {
                        format!("{name}::{vname} => ::serde::Json::Str(\"{vname}\".to_string()),\n")
                    }
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let parts: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json({b})"))
                            .collect();
                        let inner = if *n == 1 {
                            parts[0].clone()
                        } else {
                            format!("::serde::Json::Array(vec![{}])", parts.join(", "))
                        };
                        format!(
                            "{name}::{vname}({}) => ::serde::Json::Object(vec![(\"{vname}\".to_string(), {inner})]),\n",
                            binders.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let inner = object_expr(fs, "", "");
                        format!(
                            "{name}::{vname} {{ {} }} => ::serde::Json::Object(vec![(\"{vname}\".to_string(), {inner})]),\n",
                            fs.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> ::serde::Json {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    body.parse()
        .expect("serde_derive: generated impl must parse")
}

/// Derive `serde::Deserialize` (a marker impl in this stand-in).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_item(input) {
        Item::Struct(name, _) | Item::Enum(name, _) => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive: generated impl must parse")
}

/// Build a `Json::Object(...)` expression over named fields. `prefix` is
/// prepended to each field access (`self.` for structs, empty for
/// match-bound variant fields).
fn object_expr(fields: &[String], prefix: &str, _suffix: &str) -> String {
    let parts: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_json(&{prefix}{f}))"))
        .collect();
    format!("::serde::Json::Object(vec![{}])", parts.join(", "))
}

/// Parse the derive input into an [`Item`]. Panics (compile error) on shapes
/// this stand-in does not support (e.g. generic types).
fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                // Optional (crate)/(super)/... restriction.
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in does not support generic types ({name})");
        }
    }
    match kind.as_str() {
        "struct" => match toks.next() {
            None => Item::Struct(name, Fields::Unit),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct(name, Fields::Unit),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct(name, Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::Struct(name, Fields::Tuple(count_tuple_fields(g.stream())))
            }
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(name, parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Parse `name: Type, ...` inside a brace group, returning field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:`, found {other:?}"),
        }
        // Consume the type up to a top-level comma, tracking angle depth
        // (generic arguments contain commas that do not end the field).
        let mut angle = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle += 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle -= 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => {
                    toks.next();
                    break;
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
    }
    fields
}

/// Count top-level comma-separated types in a paren group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_tokens = false;
    let mut angle = 0i32;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

/// Parse enum variants: `Name`, `Name(T, ...)`, `Name { f: T, ... }`, with
/// optional attributes and `= discriminant`.
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let vname = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fs = parse_named_fields(g.stream());
                toks.next();
                Fields::Named(fs)
            }
            _ => Fields::Unit,
        };
        // Skip optional `= discriminant` then the trailing comma.
        loop {
            match toks.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
        variants.push((vname, fields));
    }
    variants
}
