//! Offline stand-in for `serde_json`: renders the vendored [`serde::Json`]
//! tree to text. Only the entry points this workspace uses are provided.

use serde::{Json, Serialize};
use std::fmt;

/// Serialization error (infallible in this stand-in, kept for API shape).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), 0, &mut out);
    Ok(out)
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

fn write_json(v: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::UInt(u) => out.push_str(&u.to_string()),
        Json::Float(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_escaped(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_json(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push_str(": ");
                write_json(val, indent + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::Object(vec![
            (
                "a".into(),
                Json::Array(vec![Json::Int(1), Json::Bool(true)]),
            ),
            ("b".into(), Json::Str("x\"y".into())),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": ["));
        assert!(s.contains("\"x\\\"y\""));
    }
}
