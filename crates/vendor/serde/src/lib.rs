//! Offline stand-in for the `serde` crate.
//!
//! Provides [`Serialize`] / [`Deserialize`] traits and re-exports the derive
//! macros from `serde_derive`. Serialization targets the in-memory [`Json`]
//! tree, which `serde_json` renders to text. Only the surface this workspace
//! uses is implemented; see `crates/vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

/// An in-memory JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (insertion-ordered).
    Object(Vec<(String, Json)>),
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

/// A value that can be serialized to [`Json`].
pub trait Serialize {
    /// Convert to the JSON tree.
    fn to_json(&self) -> Json;
}

/// Marker trait paired with the `Deserialize` derive.
///
/// Deserialization is not implemented in this stand-in — no code path in the
/// workspace deserializes — but the derive keeps call sites source-compatible
/// with real serde.
pub trait Deserialize: Sized {}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl Deserialize for $t {}
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}
impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}
impl<T: Deserialize> Deserialize for Arc<T> {}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    /// Maps serialize as arrays of `[key, value]` pairs: keys here are
    /// arbitrary ordered values (e.g. nested bag elements), not strings.
    fn to_json(&self) -> Json {
        Json::Array(
            self.iter()
                .map(|(k, v)| Json::Array(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}
impl<K: Deserialize, V: Deserialize> Deserialize for BTreeMap<K, V> {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(3i64.to_json(), Json::Int(3));
        assert_eq!(3u64.to_json(), Json::UInt(3));
        assert_eq!(true.to_json(), Json::Bool(true));
        assert_eq!("x".to_json(), Json::Str("x".into()));
    }

    #[test]
    fn containers_serialize() {
        assert_eq!(
            vec![1i64, 2].to_json(),
            Json::Array(vec![Json::Int(1), Json::Int(2)])
        );
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1i64);
        assert_eq!(
            m.to_json(),
            Json::Array(vec![Json::Array(vec![Json::Str("a".into()), Json::Int(1)])])
        );
    }
}
