//! Offline stand-in for the `rayon` crate.
//!
//! Provides [`join`] and order-preserving parallel iterators over
//! slices/vectors, executed on a lazily-started **persistent worker pool**
//! (one thread per core). Tasks are scoped: borrowed (non-`'static`) work is
//! dispatched to the pool and the caller blocks until completion, *helping
//! to drain the queue while it waits* — which both amortizes thread startup
//! across calls (the property the batched-refresh hot path needs) and makes
//! nested fan-outs deadlock-free.
//!
//! There is no work stealing; items are split into contiguous chunks. That
//! is the right shape for this workspace's use: a handful of independent,
//! similarly-sized view-refresh tasks per update batch.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Number of worker threads the pool starts.
fn workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolInner {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

fn pool() -> &'static PoolInner {
    static POOL: OnceLock<&'static PoolInner> = OnceLock::new();
    POOL.get_or_init(|| {
        let inner: &'static PoolInner = Box::leak(Box::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        for i in 0..workers() {
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || worker_loop(inner))
                .expect("spawn pool worker");
        }
        inner
    })
}

fn worker_loop(inner: &'static PoolInner) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("pool queue");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = inner.available.wait(q).expect("pool queue");
            }
        };
        job();
    }
}

fn try_pop() -> Option<Job> {
    pool().queue.lock().expect("pool queue").pop_front()
}

/// Tracks completion (and the first panic) of a group of scoped tasks.
struct Latch {
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn new(count: usize) -> Arc<Latch> {
        Arc::new(Latch {
            remaining: AtomicUsize::new(count),
            panic: Mutex::new(None),
        })
    }

    fn run_one(&self, job: impl FnOnce()) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
            let mut slot = self.panic.lock().expect("latch panic slot");
            slot.get_or_insert(payload);
        }
        self.remaining.fetch_sub(1, Ordering::Release);
    }

    fn done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }
}

/// Dispatch `tasks` (which may borrow the caller's stack) to the pool and
/// block until all have run, helping to execute queued jobs while waiting.
///
/// # Safety of the lifetime erasure
///
/// The closures are transmuted to `'static` to fit the pool's job type.
/// This is sound because this function does not return until every task has
/// finished (`Latch`), so the borrowed data outlives all uses; panics are
/// captured and re-raised after the latch settles.
fn run_scoped<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    if tasks.is_empty() {
        return;
    }
    let latch = Latch::new(tasks.len());
    let mut tasks = tasks;
    // Keep one task to run inline: the caller is a worker too.
    let inline = tasks.pop().expect("non-empty");
    let inner = pool();
    {
        let mut q = inner.queue.lock().expect("pool queue");
        for task in tasks {
            let latch = Arc::clone(&latch);
            // SAFETY: see function docs — completion is awaited below.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
            q.push_back(Box::new(move || latch.run_one(task)));
        }
        inner.available.notify_all();
    }
    latch.run_one(inline);
    // Help-first wait: drain whatever is queued (our tasks or someone
    // else's nested ones) instead of blocking, so nested fan-outs from
    // within pool workers cannot deadlock.
    while !latch.done() {
        match try_pop() {
            Some(job) => job(),
            None => std::thread::yield_now(),
        }
    }
    let payload = latch.panic.lock().expect("latch panic slot").take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    {
        let slot_a = &mut ra;
        let slot_b = &mut rb;
        run_scoped(vec![
            Box::new(move || *slot_b = Some(b())),
            Box::new(move || *slot_a = Some(a())),
        ]);
    }
    (
        ra.expect("join task a completed"),
        rb.expect("join task b completed"),
    )
}

/// Core executor: apply `f` to every item on the worker pool, preserving
/// input order in the output.
fn run_parallel<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let threads = workers().min(n);
    let chunk = n.div_ceil(threads);
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let f = &f;
    {
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(threads);
        for (in_chunk, out_chunk) in slots.chunks_mut(chunk).zip(results.chunks_mut(chunk)) {
            tasks.push(Box::new(move || {
                for (slot, out) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                    *out = Some(f(slot.take().expect("item present")));
                }
            }));
        }
        run_scoped(tasks);
    }
    results
        .into_iter()
        .map(|r| r.expect("worker filled slot"))
        .collect()
}

/// The common parallel-iterator imports.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

/// Parallel iterator types.
pub mod iter {
    use super::run_parallel;

    /// An eager "parallel iterator" over an owned collection of items.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    /// A mapped parallel iterator, executed on `collect`/`for_each`.
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T: Send> ParIter<T> {
        /// Map every item through `f` (runs at the terminal operation).
        pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
            ParMap {
                items: self.items,
                f,
            }
        }

        /// Apply `f` to every item in parallel.
        pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
            run_parallel(self.items, f);
        }

        /// Number of items.
        pub fn len(&self) -> usize {
            self.items.len()
        }

        /// Is the iterator empty?
        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
        /// Run the map in parallel and collect results in input order.
        pub fn collect<C: From<Vec<R>>>(self) -> C {
            C::from(run_parallel(self.items, self.f))
        }

        /// Run the map in parallel, discarding results.
        pub fn for_each<G: Fn(R) + Sync>(self, g: G) {
            let f = self.f;
            run_parallel(self.items, |t| g(f(t)));
        }
    }

    /// Conversion of owned collections into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Consume into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    /// Parallel iteration over `&collection`.
    pub trait IntoParallelRefIterator<'a> {
        /// Borrowed item type.
        type Item: Send + 'a;
        /// A parallel iterator of shared references.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    /// Parallel iteration over `&mut collection`.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Mutably borrowed item type.
        type Item: Send + 'a;
        /// A parallel iterator of exclusive references.
        fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
            ParIter {
                items: self.iter_mut().collect(),
            }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
            ParIter {
                items: self.iter_mut().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::iter::{IntoParallelRefIterator, IntoParallelRefMutIterator};
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<i64> = (0..100).collect();
        let doubled: Vec<i64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<i64> = (0..50).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, (1..51).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i64> = vec![];
        let out: Vec<i64> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7i64];
        let out: Vec<i64> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn nested_fanout_does_not_deadlock() {
        // More nested groups than pool workers: the help-while-waiting loop
        // must keep making progress.
        let outer: Vec<i64> = (0..64).collect();
        let sums: Vec<i64> = outer
            .par_iter()
            .map(|&i| {
                let inner: Vec<i64> = (0..16).collect();
                let (a, b) = join(
                    || {
                        inner
                            .par_iter()
                            .map(|x| x + i)
                            .collect::<Vec<_>>()
                            .iter()
                            .sum::<i64>()
                    },
                    || i,
                );
                a + b
            })
            .collect();
        assert_eq!(sums.len(), 64);
        let expected: i64 = (0..64)
            .map(|i| (0..16).map(|x| x + i).sum::<i64>() + i)
            .sum();
        assert_eq!(sums.iter().sum::<i64>(), expected);
    }

    #[test]
    fn panics_propagate_from_workers() {
        let result = std::panic::catch_unwind(|| {
            let v: Vec<i64> = (0..8).collect();
            let _: Vec<i64> = v
                .par_iter()
                .map(|&x| {
                    if x == 5 {
                        panic!("boom");
                    }
                    x
                })
                .collect();
        });
        assert!(result.is_err());
    }
}
