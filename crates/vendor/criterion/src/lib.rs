//! Offline stand-in for the `criterion` crate.
//!
//! Provides [`Criterion`], [`BenchmarkId`], benchmark groups and the
//! [`criterion_group!`] / [`criterion_main!`] macros with the call shapes
//! this workspace's benches use. Timing is mean-over-samples printed to
//! stdout — no statistics engine, plots, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// A benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up period before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmark `f` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.bencher();
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Benchmark `f` without an input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.bencher();
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Finish the group (reports are printed as benches run).
    pub fn finish(self) {}

    fn bencher(&self) -> Bencher {
        Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        }
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        if b.samples.is_empty() {
            println!("{}/{}: no samples", self.name, id);
            return;
        }
        let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
        let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{}/{}: mean {} (min {}, max {}, {} samples)",
            self.name,
            id,
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            b.samples.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Runs the measured routine and records samples.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`: warm up, then time `sample_size` executions (or
    /// until the measurement-time budget is spent).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        black_box(routine());
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos() as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut count = 0u64;
        g.bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, &n| {
            b.iter(|| {
                count += n;
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }
}
