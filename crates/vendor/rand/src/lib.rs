//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::{gen, gen_bool, gen_range}`](Rng). The generator core is
//! SplitMix64 — statistically fine for workload generation and fully
//! deterministic per seed (the property the generators' tests rely on).

use std::ops::{Range, RangeInclusive};

/// A random number generator.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value in `range` (half-open or inclusive
    /// integer ranges). The output type is inferred from the call site, as
    /// with real rand.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A random value of a [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable uniformly "from all bits" (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample<R: Rng>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample values of type `T` from.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics on empty ranges.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: SplitMix64 in this stand-in.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
