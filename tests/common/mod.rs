//! Shared infrastructure of the property suites that exercise the
//! process-global intern arena (`prop_gc`, `prop_bounded_gc`, `prop_serve`,
//! `prop_recovery`).
//!
//! Two disciplines every arena-touching suite must follow live here once
//! instead of per-file:
//!
//! * **Serialization + ever-fresh payloads.** The arena is process-global,
//!   so cases serialize on one mutex and tag every interned payload with a
//!   process-unique case number — a sweep can never confuse one case's
//!   values with another's, and exact `ArenaStats` assertions hold.
//! * **Sequential-replica replay.** The differential checks compare
//!   observed states against a fresh engine replaying the *identical*
//!   stream one batch at a time; [`stream_states`]/[`plan_states`] build
//!   the per-batch-index state tables those comparisons index into.
//!
//! Each test binary compiles its own copy (`mod common;`), so items unused
//! by one binary are expected: hence the module-wide `dead_code` allow.

#![allow(dead_code)]

use nrc_core::Expr;
use nrc_data::{intern, Bag, Database, Value};
use nrc_engine::{IvmSystem, Parallelism, Strategy, UpdateBatch};
use nrc_workloads::{RecoveryPlan, StreamConfig, StreamGen};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());
static CASE: AtomicU64 = AtomicU64::new(0);

/// Serialize cases in this binary against each other (poison-tolerant:
/// a failing case must not wedge the rest of the suite).
pub fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// A process-unique case number for ever-fresh payload tagging.
pub fn fresh_case() -> u64 {
    CASE.fetch_add(1, Ordering::Relaxed)
}

/// A payload unique to `(prefix, case, elem)`: ever-fresh with respect to
/// every other case that ever ran in this process.
pub fn payload(prefix: &str, case: u64, elem: u16) -> Value {
    Value::Tuple(vec![
        Value::str(format!("{prefix}-{case}")),
        Value::int(elem as i64),
    ])
}

/// `k` flat payloads in a bag plus one nested bag value of `nested`
/// children (so reclamation must ride the release cascade).
pub fn build_garbage(prefix: &str, case: u64, k: usize, nested: usize) -> (Bag, Value) {
    let bag = Bag::from_values((0..k as u16).map(|i| payload(prefix, case, i)));
    let inner: Vec<Value> = (1000..1000 + nested as u16)
        .map(|i| payload(prefix, case, i))
        .collect();
    let nested_val = Value::Bag(Bag::from_values(inner));
    let holder = Bag::from_values([nested_val.clone()]);
    // Fold the holder into the returned bag so dropping it releases both.
    let mut all = bag;
    all.union_assign(&holder);
    (all, nested_val)
}

/// Unbounded sweeps until quiescent; returns the total slots freed.
pub fn drain() -> u64 {
    let mut freed = 0;
    for _ in 0..64 {
        let s = intern::collect_now();
        freed += s.freed;
        if s.freed == 0 && s.pending == 0 {
            return freed;
        }
    }
    panic!("arena backlog failed to drain");
}

/// The number of cases/seeds a deterministic sweep loop should run:
/// `default`, unless `PROPTEST_CASES` dials it (the same environment knob
/// the proptest configs respect, so CI controls *all* property depth with
/// one variable).
pub fn case_count(default: u64) -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Sequentially replay `batches` over a fresh engine with `views`
/// registered, recording every view's state per batch index:
/// `states[i][view]` is the view after `i` batches. `states[0]` is the
/// post-registration (pre-stream) state.
pub fn plan_states(
    db: Database,
    batches: &[Vec<(String, Bag)>],
    views: &[(&str, Expr, Strategy)],
) -> Vec<BTreeMap<String, Bag>> {
    let mut sys = IvmSystem::new(db);
    sys.set_parallelism(Parallelism::Sequential);
    for (name, query, strategy) in views {
        sys.register(*name, query.clone(), *strategy)
            .expect("replica registration");
    }
    let state_of = |sys: &IvmSystem| -> BTreeMap<String, Bag> {
        views
            .iter()
            .map(|(name, _, _)| ((*name).to_string(), sys.view(name).expect("replica view")))
            .collect()
    };
    let mut states = vec![state_of(&sys)];
    for batch in batches {
        let batch = UpdateBatch::from_updates(batch.iter().cloned());
        sys.apply_batch(&batch).expect("replica batch");
        states.push(state_of(&sys));
    }
    states
}

/// [`plan_states`] over a [`RecoveryPlan`]'s database and batches.
pub fn recovery_plan_states(
    plan: &RecoveryPlan,
    views: &[(&str, Expr, Strategy)],
) -> Vec<BTreeMap<String, Bag>> {
    plan_states(plan.db.clone(), &plan.batches, views)
}

/// [`plan_states`] for a seeded stream: regenerates the identical stream
/// (`StreamGen` is deterministic per seed) and replays `nbatches` of it.
pub fn stream_states(
    seed: u64,
    cfg: &StreamConfig,
    initial: usize,
    nbatches: usize,
    views: &[(&str, Expr, Strategy)],
) -> Vec<BTreeMap<String, Bag>> {
    let mut gen = StreamGen::new(seed, cfg.clone());
    let db = gen.database(initial);
    let batches = gen.batches(nbatches);
    plan_states(db, &batches, views)
}
