//! `proptest`-driven invariants of the observability layer (`nrc-obs`):
//!
//! * **Quantile error bound** — for random sample sets spanning every
//!   magnitude, each log2/8-sub-bucketed histogram quantile brackets the
//!   exact same-rank sorted-sample quantile from above by at most the
//!   documented 12.5% relative error (`exact ≤ reported` and
//!   `8·reported < 9·exact` for exact > 0), at every probed q.
//! * **Merge ≡ concatenation** — `Histogram::merge` of two independently
//!   recorded histograms snapshots identically (count, sum, max, every
//!   bucket) to one histogram that recorded the concatenated samples, so
//!   per-thread shards can be folded without distortion.
//! * **Concurrent totals are exact** — counters and histograms hammered
//!   from many threads lose nothing: final counts and sums equal the
//!   arithmetic totals of everything recorded (the primitives are
//!   relaxed-atomic increments, not sampled).
//! * **No torn traces** — a bounded `FlightRecorder` ring under
//!   concurrent submitters and a racing dumper only ever returns traces
//!   whose span lists are internally consistent with the submitting
//!   thread's signature (submission moves whole `BatchTrace` values under
//!   one lock; eviction can drop a trace but never splice two).
//!
//! These suites use instance-level `Registry`/`FlightRecorder` values —
//! never the process-wide globals — so they neither disturb nor depend on
//! instrumentation running elsewhere in the test process.

use nrc_obs::trace::FlightRecorder;
use nrc_obs::{Counter, Histogram, HistogramSnapshot, Registry, TraceBuilder};
use proptest::prelude::*;

/// The exact rank-`⌈q·n⌉` quantile of a sorted sample set — the oracle
/// the histogram's bucketed answer is compared against.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Samples spanning every magnitude class the bucket scheme handles:
/// exact small values, mid-range octaves, and near-`u64::MAX` extremes.
fn sample_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..16,
            16u64..100_000,
            100_000u64..10_000_000_000,
            any::<u64>(),
            (u64::MAX - 1024)..=u64::MAX,
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(64))]

    /// Every reported quantile sits in `[exact, exact × 1.125)`.
    #[test]
    fn quantiles_stay_within_the_documented_error_bound(samples in sample_strategy()) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let reported = snap.quantile(q);
            prop_assert!(reported >= exact, "q={q}: reported {reported} < exact {exact}");
            prop_assert!(
                (reported as u128) * 8 < (exact as u128) * 9 + 8,
                "q={q}: reported {reported} breaches 12.5% bound over exact {exact}"
            );
        }
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        prop_assert_eq!(snap.count, samples.len() as u64);
    }

    /// `merge` is indistinguishable from having recorded the
    /// concatenation — for the atomic merge and the snapshot-level one.
    #[test]
    fn merge_equals_concatenation(a in sample_strategy(), b in sample_strategy()) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        let hcat = Histogram::new();
        for &v in a.iter().chain(&b) {
            hcat.record(v);
        }
        let expected = hcat.snapshot();

        // Snapshot-level merge (what Registry::snapshot does to shards).
        let mut folded = HistogramSnapshot::empty();
        folded.merge(&ha.snapshot());
        folded.merge(&hb.snapshot());
        prop_assert_eq!(&folded.count, &expected.count);
        prop_assert_eq!(&folded.sum, &expected.sum);
        prop_assert_eq!(&folded.max, &expected.max);
        prop_assert_eq!(&folded.buckets, &expected.buckets);

        // Atomic in-place merge.
        ha.merge(&hb);
        let merged = ha.snapshot();
        prop_assert_eq!(&merged.count, &expected.count);
        prop_assert_eq!(&merged.sum, &expected.sum);
        prop_assert_eq!(&merged.max, &expected.max);
        prop_assert_eq!(&merged.buckets, &expected.buckets);
    }

    /// Concurrent increments are never lost: totals are exact, not
    /// statistical.
    #[test]
    fn concurrent_recording_totals_are_exact(
        threads in 1usize..6,
        per_thread in 1usize..300,
        step in 1u64..50,
    ) {
        let reg = Registry::new();
        let counter: std::sync::Arc<Counter> = reg.counter("t.hits");
        let hist: std::sync::Arc<Histogram> = reg.histogram("t.ns");
        std::thread::scope(|scope| {
            for t in 0..threads {
                let counter = &counter;
                let hist = &hist;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        counter.add(step);
                        hist.record((t * per_thread + i) as u64);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        let n = (threads * per_thread) as u64;
        prop_assert_eq!(snap.counters["t.hits"], n * step);
        let h = &snap.histograms["t.ns"];
        prop_assert_eq!(h.count, n);
        // 0 + 1 + … + (threads·per_thread − 1), and nothing else.
        prop_assert_eq!(h.sum, n * (n - 1) / 2);
        prop_assert_eq!(h.max, n - 1);
    }

    /// A racing dumper only ever sees whole traces: every span of a
    /// dumped trace carries its submitter's signature and the trace has
    /// exactly the span count that submitter always writes.
    #[test]
    fn flight_recorder_traces_are_never_torn(
        cap in 1usize..12,
        writers in 1usize..5,
        traces_each in 1usize..40,
        spans_each in 1usize..6,
    ) {
        let rec = FlightRecorder::new(cap);
        let dumped = std::thread::scope(|scope| {
            for w in 0..writers {
                let rec = &rec;
                scope.spawn(move || {
                    for t in 0..traces_each {
                        // batch_index encodes the writer; every span tag
                        // repeats it — a spliced trace would mix tags.
                        let mut b = TraceBuilder::start(w as u64);
                        for s in 0..spans_each {
                            b.span("stage", format!("w{w}-t{t}-s{s}"), 1);
                        }
                        rec.submit(b.finish());
                    }
                });
            }
            let rec = &rec;
            scope
                .spawn(move || {
                    let mut seen = Vec::new();
                    for _ in 0..8 {
                        seen.extend(rec.dump());
                        std::thread::yield_now();
                    }
                    seen
                })
                .join()
                .expect("dumper thread")
        });
        let final_dump = rec.dump();
        prop_assert!(final_dump.len() <= cap);
        prop_assert_eq!(
            rec.submitted(),
            (writers * traces_each) as u64,
            "every submission must be counted even when evicted"
        );
        for trace in dumped.iter().chain(&final_dump) {
            let w = trace.batch_index;
            prop_assert!(w < writers as u64, "foreign trace: {trace:?}");
            prop_assert_eq!(
                trace.spans.len(),
                spans_each,
                "torn span list: {:?}",
                trace
            );
            let expect = format!("w{w}-");
            for span in &trace.spans {
                prop_assert!(
                    span.tag.starts_with(&expect),
                    "span {:?} spliced into writer {}'s trace",
                    span,
                    w
                );
            }
        }
    }
}
