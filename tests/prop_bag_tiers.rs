//! `proptest`-driven invariants of the two-tier `Bag` representation
//! (small sorted-run tier vs. shared tree tier, `nrc_data::bag`):
//!
//! * **Differential vs. a plain map**: random
//!   insert/union/difference/scale/bulk-extend/promote sequences agree
//!   with a `BTreeMap<Vid, i64>` replica in content, canonical form
//!   (no zero weights, strictly ascending keys), iteration order, `Ord`
//!   and `Hash` — whatever tier each intermediate lands in, and across
//!   the small→tree promotion boundary.
//! * **Engine differential**: four-strategy `apply_batch` over coalesced
//!   batches whose deltas mix both tiers (transient small runs and
//!   above-threshold tree bags) equals a sequential one-update-at-a-time
//!   replay, under `CollectPolicy::Bounded` — and every view read
//!   resolves (no `StaleVid` escapes through small-tier bags, whose
//!   retain bookkeeping is batched rather than per-node).
//!
//! The arena is process-global, so cases serialize and use per-case
//! payloads (see `tests/common`).

mod common;

use common::{drain, fresh_case, payload, serial};
use nrc_core::builder::{cmp_lit, filter_query, rel};
use nrc_core::expr::CmpOp;
use nrc_data::{intern, Bag, Value, Vid};
use nrc_engine::{CollectPolicy, IvmSystem, Parallelism, Strategy as Maintain, UpdateBatch};
use nrc_workloads::{StreamConfig, StreamGen};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// One step of a random bag-algebra sequence.
#[derive(Clone, Debug)]
enum Op {
    /// Point insert (multiplicity may be zero or negative).
    Insert(u16, i64),
    /// `⊎=` a bag built from these raw pairs.
    Union(Vec<(u16, i64)>),
    /// Group difference with a bag built from these raw pairs.
    Diff(Vec<(u16, i64)>),
    /// Multiply every multiplicity (`0` empties the bag).
    Scale(i64),
    /// `extend_id_pairs` with raw (duplicate/zero-carrying) pairs.
    Bulk(Vec<(u16, i64)>),
    /// A bulk run wide enough to push the bag across the promotion
    /// threshold (unless cancellations keep it small — also worth hitting).
    Promote,
}

fn arb_pairs() -> impl Strategy<Value = Vec<(u16, i64)>> {
    prop::collection::vec((0u16..700, -4i64..5), 0..12)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..700, -4i64..5).prop_map(|(e, m)| Op::Insert(e, m)),
        arb_pairs().prop_map(Op::Union),
        arb_pairs().prop_map(Op::Diff),
        (-2i64..3).prop_map(Op::Scale),
        arb_pairs().prop_map(Op::Bulk),
        Just(Op::Promote),
    ]
}

/// Apply a raw pair to the replica map (sum, drop zeros).
fn replica_add(replica: &mut BTreeMap<Vid, i64>, id: Vid, m: i64) {
    let v = replica.entry(id).or_insert(0);
    *v += m;
    if *v == 0 {
        replica.remove(&id);
    }
}

fn hash_of<T: Hash>(x: &T) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    x.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(24))]

    /// Random op sequences: the two-tier bag stays equal to a plain
    /// `BTreeMap<Vid, i64>` replica in content, canonical form, iteration
    /// order, `Ord` and `Hash`, across promotions and re-tierings.
    #[test]
    fn random_sequences_agree_with_a_map_replica(ops in prop::collection::vec(arb_op(), 0..24)) {
        let _serial = serial();
        let case = fresh_case();
        let vid = |e: u16| intern::intern(payload("prop-tier", case, e));
        let as_bag = |pairs: &[(u16, i64)]| {
            Bag::from_id_pairs(pairs.iter().map(|&(e, m)| (vid(e), m)))
        };
        let mut bag = Bag::empty();
        let mut replica: BTreeMap<Vid, i64> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Insert(e, m) => {
                    let id = vid(*e);
                    bag.insert_id(id, *m);
                    replica_add(&mut replica, id, *m);
                }
                Op::Union(pairs) => {
                    bag.union_assign(&as_bag(pairs));
                    for &(e, m) in pairs {
                        replica_add(&mut replica, vid(e), m);
                    }
                }
                Op::Diff(pairs) => {
                    bag = bag.difference(&as_bag(pairs));
                    for &(e, m) in pairs {
                        replica_add(&mut replica, vid(e), -m);
                    }
                }
                Op::Scale(k) => {
                    bag = bag.scale(*k).expect("small multiplicities");
                    if *k == 0 {
                        replica.clear();
                    } else {
                        replica.values_mut().for_each(|m| *m *= k);
                    }
                }
                Op::Bulk(pairs) => {
                    bag.extend_id_pairs(pairs.iter().map(|&(e, m)| (vid(e), m)));
                    for &(e, m) in pairs {
                        replica_add(&mut replica, vid(e), m);
                    }
                }
                Op::Promote => {
                    let wide: Vec<(u16, i64)> =
                        (0..(Bag::SMALL_TIER_MAX + 8) as u16).map(|e| (e, 1)).collect();
                    bag.extend_id_pairs(wide.iter().map(|&(e, m)| (vid(e), m)));
                    for &(e, m) in &wide {
                        replica_add(&mut replica, vid(e), m);
                    }
                }
            }
            // Content + canonical form + iteration order, after every op:
            // both sides iterate strictly Vid-ascending with no zeros.
            let got: Vec<(Vid, i64)> = bag.ids().collect();
            let want: Vec<(Vid, i64)> = replica.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(&got, &want, "content/order diverged after {:?}", op);
            prop_assert!(got.iter().all(|&(_, m)| m != 0), "zero weight stored");
            prop_assert!(
                got.windows(2).all(|w| w[0].0 < w[1].0),
                "keys not strictly sorted"
            );
            prop_assert_eq!(bag.distinct_count(), replica.len());
            // Tier invariant: the small tier never holds more than the
            // threshold (the tree tier may hold fewer — no demotion).
            if bag.is_small_tier() {
                prop_assert!(bag.distinct_count() <= Bag::SMALL_TIER_MAX);
            }
        }
        // Trait-identity across tiers: a bag freshly built from the replica
        // (which picks its tier by size alone) is indistinguishable from
        // the sequence-built bag, whatever tier *that* ended up in.
        let rebuilt = Bag::from_id_pairs(replica.iter().map(|(&k, &v)| (k, v)));
        prop_assert_eq!(&bag, &rebuilt);
        prop_assert_eq!(bag.cmp(&rebuilt), std::cmp::Ordering::Equal);
        prop_assert_eq!(hash_of(&bag), hash_of(&rebuilt));
        // Ord is the lexicographic pair order, tier-independent: perturb
        // the smallest entry and both orders must agree.
        if let Some((id, m)) = bag.ids().next() {
            let mut perturbed = bag.clone();
            perturbed.insert_id(id, if m == -1 { -2 } else { -1 });
            let a: Vec<(Vid, i64)> = bag.ids().collect();
            let b: Vec<(Vid, i64)> = perturbed.ids().collect();
            prop_assert_eq!(bag.cmp(&perturbed), a.cmp(&b));
        }
        drop(bag);
        drop(rebuilt);
        drain();
    }

    /// Coalesced `apply_batch` over mixed-tier deltas under bounded GC
    /// equals a sequential one-update-per-batch replay, for all four
    /// maintenance strategies, with every read resolving (no `StaleVid`).
    #[test]
    fn apply_batch_equals_sequential_replay_with_mixed_tier_deltas(
        seed in 0u64..10_000,
        nbatches in 1usize..4,
        batch_size in 1usize..6,
        big_at in prop::collection::vec(any::<bool>(), 4..5),
        max_slots in 1u64..48,
        every in 1u64..3,
        query_idx in 0usize..2,
    ) {
        let _serial = serial();
        let case = fresh_case();
        let mut gen = StreamGen::new(seed, StreamConfig {
            batch_size,
            genres: 3,
            directors: 3,
            payload_prefix: format!("prop-tier-eng-{case}-"),
            ..StreamConfig::default()
        });
        let db = gen.database(16);
        let mut batches: Vec<Vec<(String, Bag)>> = gen.batches(nbatches);
        // Inject an above-threshold (tree-tier) delta into flagged batches;
        // its negation rides the *next* batch, so coalescing must merge a
        // big tree bag against the stream's small transient runs both ways.
        let big = |tag: usize| -> Bag {
            Bag::from_values((0..(Bag::SMALL_TIER_MAX + 16) as i64).map(|i| {
                Value::Tuple(vec![
                    Value::str(format!("tier-big-{case}-{tag}-{i}")),
                    Value::str("genre0"),
                    Value::str("d0"),
                ])
            }))
        };
        for (i, flagged) in big_at.iter().enumerate().take(batches.len()) {
            if *flagged {
                let b = big(i);
                batches[i].push(("M".to_string(), b.clone()));
                if i + 1 < batches.len() {
                    batches[i + 1].push(("M".to_string(), b.negate()));
                }
            }
        }
        let q = if query_idx == 0 {
            rel("M")
        } else {
            filter_query("M", cmp_lit("x", vec![1], CmpOp::Eq, "genre0"))
        };
        let views = ["re", "fo", "rc", "sh"];
        // System under test: coalesced batches + bounded reclamation.
        let mut sys = IvmSystem::new(db.clone());
        sys.set_parallelism(Parallelism::Sequential);
        sys.set_collect_policy(CollectPolicy::Bounded { max_slots, every });
        // Sequential replica: one update per batch, no reclamation.
        let mut replica = IvmSystem::new(db);
        replica.set_parallelism(Parallelism::Sequential);
        for (name, strategy) in [
            ("re", Maintain::Reevaluate),
            ("fo", Maintain::FirstOrder),
            ("rc", Maintain::Recursive),
            ("sh", Maintain::Shredded),
        ] {
            sys.register(name, q.clone(), strategy).expect("register");
            replica.register(name, q.clone(), strategy).expect("register replica");
        }
        for batch in &batches {
            let coalesced = UpdateBatch::from_updates(batch.iter().cloned());
            sys.apply_batch(&coalesced).expect("coalesced batch");
            for upd in batch {
                let single = UpdateBatch::from_updates([upd.clone()]);
                replica.apply_batch(&single).expect("sequential update");
            }
            for view in views {
                // `view` re-resolves every element: a liveness bug in the
                // small tier's batched retains would surface as StaleVid.
                let got = sys.view(view).expect("view resolves under bounded GC");
                let want = replica.view(view).expect("replica view");
                prop_assert_eq!(
                    got, want,
                    "coalesced apply_batch diverged from sequential replay on {}",
                    view
                );
            }
        }
        drop(sys);
        drop(replica);
        drain();
    }
}
