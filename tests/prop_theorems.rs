//! Property tests for **Theorem 2** (degrees), **Theorem 4** (cost
//! separation) and the finiteness of recursive IVM, over generator-produced
//! queries.

mod common;

use nrc_core::cost::{cost, lt, size_of_bag, tcost, Cost, CostEnv};
use nrc_core::degree::degree_of_wrt;
use nrc_core::delta::{delta_tower, delta_wrt_rel};
use nrc_core::generator::{GenConfig, QueryGen};
use nrc_core::optimize::simplify;
use nrc_core::typecheck::TypeEnv;

#[test]
fn theorem_2_degree_drops_by_one_along_towers() {
    let mut checked = 0;
    let cases = common::case_count(400);
    for seed in 0..cases {
        let mut g = QueryGen::new(seed, GenConfig::default());
        let db = g.gen_database();
        let q = g.gen_inc_query(&db);
        let tenv = TypeEnv::from_database(&db);
        for rel in q.free_relations() {
            let simplified = simplify(&q, &tenv).expect("simplify");
            if !simplified.depends_on_rel(&rel) {
                continue; // simplification revealed independence
            }
            let deg = degree_of_wrt(&simplified, &rel);
            // Degrees can exceed the practical tower length for big
            // products; bound the work.
            if !(1..=5).contains(&deg) {
                continue;
            }
            let tower = delta_tower(&simplified, &rel, &tenv, 6)
                .unwrap_or_else(|e| panic!("seed {seed}: tower failed for {simplified}: {e}"));
            assert_eq!(
                tower.len() as u32,
                deg + 1,
                "seed {seed}: tower length ≠ deg+1 for {simplified} (deg {deg})"
            );
            for (i, level) in tower.iter().enumerate() {
                assert_eq!(
                    degree_of_wrt(level, &rel),
                    deg - i as u32,
                    "seed {seed}: degree wrong at level {i} of {simplified}"
                );
            }
            assert!(!tower.last().expect("tower non-empty").depends_on_rel(&rel));
            checked += 1;
        }
    }
    // Coverage floor scales with the dialed case count (~1 tower per 4
    // seeds survives the degree/independence filters).
    assert!(
        checked as u64 > cases / 4,
        "only {checked} towers exercised"
    );
}

#[test]
fn theorem_4_deltas_cost_strictly_less() {
    let mut checked = 0;
    let cases = common::case_count(400);
    for seed in 0..cases {
        let cfg = GenConfig {
            rel_card: 8,
            ..GenConfig::default()
        };
        let mut g = QueryGen::new(seed, cfg);
        let db = g.gen_database();
        let q = g.gen_inc_query(&db);
        let tenv = TypeEnv::from_database(&db);
        let simplified = simplify(&q, &tenv).expect("simplify");
        for rel in simplified.free_relations() {
            // Incremental update: one tuple shaped like the relation's own
            // elements, against a relation of several (size(ΔR) ≺ size(R)).
            let bag = db.get(&rel).expect("relation");
            if bag.cardinality() < 2 {
                continue;
            }
            let d = simplify(
                &delta_wrt_rel(&simplified, &rel, &tenv).expect("delta"),
                &tenv,
            )
            .expect("simplify δ");
            let mut cenv = CostEnv::from_database(&db);
            for r in db.relation_names() {
                cenv.set_delta_card(r, 1);
            }
            let ch = cost(&simplified, &mut cenv)
                .unwrap_or_else(|e| panic!("seed {seed}: cost failed for {simplified}: {e}"));
            let cd = cost(&d, &mut cenv)
                .unwrap_or_else(|e| panic!("seed {seed}: cost failed for δ = {d}: {e}"));
            assert!(
                lt(&cd, &ch),
                "seed {seed}: Thm 4 cost order violated for {simplified} wrt {rel}:\n  C[[δ]] = {cd}\n  C[[h]] = {ch}"
            );
            assert!(
                tcost(&cd) < tcost(&ch),
                "seed {seed}: Thm 4 tcost violated for {simplified} wrt {rel}"
            );
            checked += 1;
        }
    }
    assert!(
        checked as u64 > cases / 4,
        "only {checked} cost comparisons exercised"
    );
}

#[test]
fn size_of_respects_the_strict_order_for_small_updates() {
    // size(ΔR) ≺ size(R) whenever ΔR has strictly fewer tuples of the same
    // shape — the definition of an *incremental* update (§4.2).
    for seed in 0..common::case_count(100) {
        let mut g = QueryGen::new(seed, GenConfig::default());
        let db = g.gen_database();
        for rel in db.relation_names() {
            let bag = db.get(rel).expect("bag");
            if bag.cardinality() < 2 {
                continue;
            }
            let elem_ty = db.schema(rel).expect("schema");
            // A single existing tuple as the update.
            let (v, _) = bag.iter().next().expect("non-empty");
            let delta = nrc_data::Bag::singleton(v.clone());
            let sd = size_of_bag(&delta, elem_ty);
            let sr = size_of_bag(bag, elem_ty);
            assert!(
                lt(&sd, &sr),
                "seed {seed}: size({delta}) = {sd} ⊀ size(R) = {sr} for {rel}"
            );
        }
    }
}

#[test]
fn tcost_is_monotone_in_the_cost_order() {
    // x ⪯ y ⇒ tcost(x) ≤ tcost(y), the glue between Thm. 4's two parts.
    let cases = vec![
        (Cost::One, Cost::One),
        (Cost::bag(2, Cost::One), Cost::bag(5, Cost::One)),
        (
            Cost::bag(2, Cost::Tuple(vec![Cost::One, Cost::bag(3, Cost::One)])),
            Cost::bag(4, Cost::Tuple(vec![Cost::One, Cost::bag(3, Cost::One)])),
        ),
        (
            Cost::bag(3, Cost::bag(1, Cost::One)),
            Cost::bag(3, Cost::bag(9, Cost::One)),
        ),
    ];
    for (lo, hi) in cases {
        assert!(nrc_core::cost::le(&lo, &hi));
        assert!(tcost(&lo) <= tcost(&hi), "{lo} vs {hi}");
    }
}
