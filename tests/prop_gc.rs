//! `proptest`-driven invariants of intern-arena reclamation: under random
//! interleavings of bag insert / union / drop / `collect`, every id held by
//! a live bag keeps resolving to the same value, and ids that outlive their
//! slot fail *deterministically* (generation mismatch) rather than ever
//! resolving to a wrong value.
//!
//! The arena is process-global, so the tests in this binary serialize among
//! themselves and use per-case-unique payloads: a sweep must never be able
//! to confuse one case's values with another's.

mod common;

use common::{fresh_case, serial};
use nrc_data::{intern, Bag, DataError, Value, Vid};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A payload unique to (test case, element index): ever-fresh with respect
/// to every other case that ever ran in this process.
fn payload(case: u64, elem: u16) -> Value {
    common::payload("prop-gc-case", case, elem)
}

const SLOTS: usize = 4;

/// One step of the interleaving. `Insert` with a negative multiplicity
/// exercises cancellation (key removal → release); `Drop` releases a whole
/// map; `Union` exercises copy-on-write clones (bulk retains); `Collect`
/// sweeps.
#[derive(Clone, Debug)]
enum Op {
    Insert { slot: usize, elem: u16, mult: i8 },
    Union { dst: usize, src: usize },
    Drop { slot: usize },
    Collect,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SLOTS, 0u16..24, -3i8..4).prop_map(|(slot, elem, mult)| Op::Insert {
            slot,
            elem,
            mult
        }),
        (0..SLOTS, 0..SLOTS).prop_map(|(dst, src)| Op::Union { dst, src }),
        (0..SLOTS).prop_map(|slot| Op::Drop { slot }),
        Just(Op::Collect),
    ]
}

/// Check every live bag against its value-level model: identical pairs in
/// identical canonical order. Resolving here would panic (deterministically)
/// if a sweep had reclaimed anything a live bag still references.
fn check_live(
    bags: &[Option<Bag>],
    models: &[Option<BTreeMap<Value, i64>>],
) -> Result<(), TestCaseError> {
    for (bag, model) in bags.iter().zip(models) {
        let (Some(bag), Some(model)) = (bag, model) else {
            continue;
        };
        let got: Vec<(Value, i64)> = bag.iter().map(|(v, m)| (v.clone(), m)).collect();
        let want: Vec<(Value, i64)> = model.iter().map(|(v, &m)| (v.clone(), m)).collect();
        prop_assert_eq!(got, want);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(96))]

    /// Random insert/union/drop/collect interleavings: live ids resolve to
    /// the same values before and after every collection.
    #[test]
    fn live_ids_survive_collection_unchanged(ops in prop::collection::vec(arb_op(), 1..60)) {
        let _serial = serial();
        let case = fresh_case();
        let mut bags: Vec<Option<Bag>> = (0..SLOTS).map(|_| Some(Bag::empty())).collect();
        let mut models: Vec<Option<BTreeMap<Value, i64>>> =
            (0..SLOTS).map(|_| Some(BTreeMap::new())).collect();
        for op in ops {
            match op {
                Op::Insert { slot, elem, mult } => {
                    if let (Some(bag), Some(model)) = (&mut bags[slot], &mut models[slot]) {
                        let v = payload(case, elem);
                        bag.insert(v.clone(), mult as i64);
                        if mult != 0 {
                            let m = model.entry(v).or_insert(0);
                            *m += mult as i64;
                            if *m == 0 {
                                model.retain(|_, m| *m != 0);
                            }
                        }
                    }
                }
                Op::Union { dst, src } => {
                    if dst == src {
                        continue;
                    }
                    let Some(src_bag) = bags[src].clone() else { continue };
                    let Some(src_model) = models[src].clone() else { continue };
                    if let (Some(bag), Some(model)) = (&mut bags[dst], &mut models[dst]) {
                        bag.union_assign(&src_bag);
                        for (v, m) in src_model {
                            let e = model.entry(v).or_insert(0);
                            *e += m;
                        }
                        model.retain(|_, m| *m != 0);
                    }
                }
                Op::Drop { slot } => {
                    bags[slot] = None;
                    models[slot] = None;
                }
                Op::Collect => {
                    // Snapshot (id, value) pairs from live bags, sweep, and
                    // verify each id still resolves to the same value.
                    let snapshot: Vec<(Vid, Value)> = bags
                        .iter()
                        .flatten()
                        .flat_map(|b| b.ids().map(|(id, _)| (id, id.value().clone())))
                        .collect();
                    intern::collect_now();
                    for (id, before) in snapshot {
                        prop_assert_eq!(id.value(), &before);
                    }
                    check_live(&bags, &models)?;
                }
            }
        }
        intern::collect_now();
        check_live(&bags, &models)?;
    }

    /// Ids whose slots are reclaimed fail deterministically: `try_value`
    /// reports `StaleVid` (or, before the sweep reaches the slot, still the
    /// *original* value) — never a different value, even after the slot is
    /// reused for fresh payloads.
    #[test]
    fn stale_ids_error_deterministically(k in 1usize..24, churn in 1usize..64) {
        let _serial = serial();
        let case = fresh_case();
        let vals: Vec<Value> = (0..k as u16).map(|i| payload(case, i)).collect();
        let bag = Bag::from_values(vals.iter().cloned());
        let ids: Vec<Vid> = bag.ids().map(|(id, _)| id).collect();
        drop(bag);
        intern::collect_now();
        for (id, v) in ids.iter().zip(&vals) {
            match id.try_value() {
                Err(DataError::StaleVid { .. }) => {}
                Ok(got) => prop_assert_eq!(got, v, "resolved to a different value"),
                Err(other) => return Err(TestCaseError::fail(format!(
                    "unexpected error {other}"
                ))),
            }
        }
        // Drive slot reuse with fresh payloads; the old generations must
        // keep failing (never silently resolve to the new occupants).
        let churn_case = fresh_case();
        let churn_bag = Bag::from_values((0..churn as u16).map(|i| payload(churn_case, i)));
        for id in &ids {
            prop_assert!(matches!(
                id.try_value(),
                Err(DataError::StaleVid { .. })
            ));
        }
        drop(churn_bag);
        intern::collect_now();
    }
}
