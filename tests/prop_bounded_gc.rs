//! `proptest`-driven invariants of *bounded* (incremental) arena
//! collection — `intern::collect_bounded` and the engine's pacing policies:
//!
//! * **Differential**: for random (query, update stream, `CollectPolicy`)
//!   triples, all four maintenance strategies agree with a full
//!   recomputation over the final database, no matter where bounded
//!   `collect_bounded` calls (budgets K ∈ {1, 3, 17, ∞}) are interleaved
//!   between batches — the paper's strategy-equivalence guarantees (Thm. 8)
//!   must be insensitive to partial collections.
//! * **Convergence**: repeated `collect_bounded_now(K)` with no new garbage
//!   reaches exactly the live set and `ArenaStats` a full `collect_now`
//!   sweep reaches, for any K ≥ 1 — and ids whose slots are freed keep
//!   erroring deterministically even when slot reuse happens *mid-sweep*,
//!   while earlier queue entries are still pending.
//!
//! The arena is process-global, so the tests in this binary serialize among
//! themselves and use per-case-unique payloads; exact `ArenaStats` parity
//! is assertable here (unlike in the data crate's unit-test binary) because
//! every test touching the arena in this process holds the same lock.

mod common;

use common::{drain, fresh_case, serial};
use nrc_core::builder::{cmp_lit, filter_query, rel};
use nrc_core::expr::CmpOp;
use nrc_data::{intern, Bag, DataError, Value, Vid};
use nrc_engine::{CollectPolicy, IvmSystem, Parallelism, Strategy as Maintain, UpdateBatch};
use nrc_workloads::{StreamConfig, StreamGen};
use proptest::prelude::*;

/// The sampled sweep budgets of the issue: minimal, small, odd, unbounded.
fn arb_budget() -> impl Strategy<Value = u64> {
    prop_oneof![Just(1u64), Just(3), Just(17), Just(u64::MAX)]
}

/// A random engine-side reclamation policy covering every variant.
fn arb_policy() -> impl Strategy<Value = CollectPolicy> {
    prop_oneof![
        Just(CollectPolicy::Never),
        (1u64..4).prop_map(CollectPolicy::EveryN),
        (1u64..48, 1u64..3)
            .prop_map(|(max_slots, every)| CollectPolicy::Bounded { max_slots, every }),
        (1u64..400).prop_map(CollectPolicy::watermark_live),
        (1u64..8192).prop_map(CollectPolicy::watermark_bytes),
        Just(CollectPolicy::watermark_auto()),
    ]
}

/// Queries every strategy accepts (IncNRC⁺, flat): identity and genre
/// filters over the streaming movies schema.
fn query_pool(idx: usize) -> nrc_core::Expr {
    match idx {
        0 => rel("M"),
        1 => filter_query("M", cmp_lit("x", vec![1], CmpOp::Eq, "genre0")),
        _ => filter_query("M", cmp_lit("x", vec![1], CmpOp::Eq, "genre1")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(24))]

    /// Random (query, update stream, policy) triples with bounded collects
    /// interleaved at random points between batches: the four strategies
    /// stay equal to a from-scratch recomputation of the final database.
    #[test]
    fn strategies_agree_under_interleaved_bounded_collection(
        seed in 0u64..10_000,
        query_idx in 0usize..3,
        nbatches in 1usize..5,
        batch_size in 1usize..8,
        delete_tenths in 0usize..6,
        policy in arb_policy(),
        // Explicit bounded sweeps injected before random batch indices.
        interleavings in prop::collection::vec((arb_budget(), 0usize..5), 0..6),
        parallel in any::<bool>(),
    ) {
        let _serial = serial();
        let case = fresh_case();
        let mut gen = StreamGen::new(seed, StreamConfig {
            batch_size,
            delete_fraction: delete_tenths as f64 / 10.0,
            genres: 4,
            directors: 4,
            payload_prefix: format!("prop-bgc-{case}-"),
            ..StreamConfig::default()
        });
        let db = gen.database(20);
        let q = query_pool(query_idx);
        let mut sys = IvmSystem::new(db);
        sys.set_parallelism(if parallel { Parallelism::Rayon } else { Parallelism::Sequential });
        sys.set_collect_policy(policy);
        sys.register("re", q.clone(), Maintain::Reevaluate).expect("re");
        sys.register("fo", q.clone(), Maintain::FirstOrder).expect("fo");
        sys.register("rc", q.clone(), Maintain::Recursive).expect("rc");
        sys.register("sh", q.clone(), Maintain::Shredded).expect("sh");
        for step in 0..nbatches {
            for (budget, at) in &interleavings {
                if *at == step {
                    intern::collect_bounded_now(*budget);
                }
            }
            let batch = UpdateBatch::from_updates(gen.next_batch());
            sys.apply_batch(&batch).expect("batch");
        }
        for (budget, _) in &interleavings {
            // Trailing sweeps after the last batch exercise collection of
            // the stream's final garbage while the views are still read.
            intern::collect_bounded_now(*budget);
        }
        // Full recomputation: a fresh system over the final database
        // evaluates the query from scratch at registration.
        let mut scratch = IvmSystem::new(sys.database().clone());
        scratch.register("base", q, Maintain::Reevaluate).expect("scratch");
        let expected = scratch.view("base").expect("scratch view");
        for view in ["re", "fo", "rc", "sh"] {
            prop_assert_eq!(
                sys.view(view).expect("strategy view"),
                expected.clone(),
                "strategy {} diverged from full recomputation under {:?} \
                 with interleaved bounded collects",
                view,
                policy
            );
        }
        // Let the dropped systems' garbage drain before the next case.
        drop(sys);
        drop(scratch);
        drain();
    }

    /// Repeated bounded sweeps with no new garbage converge to exactly the
    /// state one full sweep reaches — same live set, same `ArenaStats` —
    /// and stale ids fail deterministically across slot reuse mid-sweep.
    #[test]
    fn bounded_collection_converges_to_a_full_sweep(
        k in 1usize..32,
        nested in 1usize..8,
        budget in arb_budget(),
        churn in 1usize..24,
    ) {
        let _serial = serial();
        drain();
        let before = intern::arena_stats();

        // ---- Phase 1: bounded sweeps, with churn interning mid-sweep ----
        let case = fresh_case();
        let (ids, bounded_freed) = {
            let (bag, nested_val) = build_garbage(case, k, nested);
            let ids: Vec<Vid> = bag.ids().map(|(id, _)| id).collect();
            let originals: Vec<Value> = ids.iter().map(|id| id.value().clone()).collect();
            drop(bag);
            drop(nested_val);
            // One bounded increment, then churn: fresh interns may reuse
            // freed slots while later queue entries are still pending.
            let mut freed = intern::collect_bounded_now(budget).freed;
            let churn_case = fresh_case();
            let churn_bag = Bag::from_values(
                (0..churn as u16).map(|i| payload(churn_case, i)),
            );
            for (id, original) in ids.iter().zip(&originals) {
                match id.try_value() {
                    Err(DataError::StaleVid { .. }) => {}
                    Ok(got) => prop_assert_eq!(
                        got, original,
                        "mid-sweep resolution changed value"
                    ),
                    Err(other) => {
                        return Err(TestCaseError::fail(format!("unexpected error {other}")));
                    }
                }
            }
            drop(churn_bag);
            // The snapshot clones share the nested value's inner map
            // (copy-on-write Arc): drop them before convergence, or they
            // would keep the cascade's children alive past the loop.
            drop(originals);
            let mut rounds = 0;
            loop {
                let s = intern::collect_bounded_now(budget);
                prop_assert!(s.freed <= budget, "budget violated: {:?}", s);
                freed += s.freed;
                if s.freed == 0 && s.pending == 0 {
                    break;
                }
                rounds += 1;
                prop_assert!(rounds < 512, "bounded sweeps failed to converge");
            }
            (ids, freed)
        };
        let after_bounded = intern::arena_stats();
        prop_assert_eq!(after_bounded.live, before.live, "live set must return to baseline");
        prop_assert_eq!(after_bounded.bytes, before.bytes, "byte account must balance");
        for id in &ids {
            prop_assert!(
                matches!(id.try_value(), Err(DataError::StaleVid { .. })),
                "id of a reclaimed slot must stay deterministically stale"
            );
        }

        // ---- Phase 2: the same garbage shape, one full sweep path ----
        let case2 = fresh_case();
        let full_freed = {
            let (bag, nested_val) = build_garbage(case2, k, nested);
            drop(bag);
            drop(nested_val);
            let mut freed = intern::collect_now().freed;
            let churn_case = fresh_case();
            let churn_bag = Bag::from_values(
                (0..churn as u16).map(|i| payload(churn_case, i)),
            );
            drop(churn_bag);
            freed += drain();
            freed
        };
        let after_full = intern::arena_stats();
        // Same live set (the shared baseline) and the same total
        // reclamation for the same garbage shape, whatever the budget.
        prop_assert_eq!(after_full.live, before.live);
        prop_assert_eq!(after_full.bytes, before.bytes);
        prop_assert_eq!(
            bounded_freed, full_freed,
            "bounded convergence must reclaim exactly what a full sweep does"
        );
    }
}

/// A payload unique to (test case, element index).
fn payload(case: u64, elem: u16) -> Value {
    common::payload("prop-bgc-case", case, elem)
}

/// `k` flat payloads in a bag plus one nested bag value of `nested`
/// children (so reclamation must ride the release cascade).
fn build_garbage(case: u64, k: usize, nested: usize) -> (Bag, Value) {
    common::build_garbage("prop-bgc-case", case, k, nested)
}
