//! Property tests for the shredding pipeline (§5): Lemma 6 (nesting inverts
//! value shredding), Theorem 8 (shredded execution + nesting ≡ direct
//! evaluation, on full NRC⁺ including input-dependent singletons), and
//! consistency preservation (Lemmas 11–12).

mod common;

use nrc_core::eval::{eval_query, Env};
use nrc_core::generator::{GenConfig, QueryGen};
use nrc_core::shred::values::{nest_bag, shred_bag, LabelGen};
use nrc_core::shred::{
    bind_shredded_database, check_consistent, eval_shredded, eval_shredded_nested, shred_query,
};
use nrc_core::typecheck::TypeEnv;

#[test]
fn lemma_6_nesting_inverts_shredding_on_random_values() {
    for seed in 0..common::case_count(200) {
        let mut g = QueryGen::new(seed, GenConfig::default());
        let ty = g.gen_type(3);
        let bag = g.gen_bag(&ty, 5);
        let mut gen = LabelGen::new();
        let (flat, ctx) = shred_bag(&bag, &ty, &mut gen)
            .unwrap_or_else(|e| panic!("seed {seed}: shred failed for type {ty}: {e}"));
        let back =
            nest_bag(&flat, &ty, &ctx).unwrap_or_else(|e| panic!("seed {seed}: nest failed: {e}"));
        assert_eq!(back, bag, "seed {seed}: Lemma 6 violated at type {ty}");
        // Lemma 11: shredded values are consistent.
        check_consistent(&flat, &ty, &ctx)
            .unwrap_or_else(|e| panic!("seed {seed}: inconsistent shredding: {e}"));
    }
}

#[test]
fn theorem_8_shredded_execution_equals_direct_evaluation() {
    let mut checked = 0;
    let cases = common::case_count(250);
    for seed in 0..cases {
        // Full NRC⁺ — input-dependent singletons allowed.
        let mut g = QueryGen::new(seed, GenConfig::default());
        let db = g.gen_database();
        let q = g.gen_query(&db);
        let tenv = TypeEnv::from_database(&db);
        let shredded = shred_query(&q, &tenv)
            .unwrap_or_else(|e| panic!("seed {seed}: shredding failed for {q}: {e}"));
        let mut env = Env::new(&db);
        let mut gen = LabelGen::new();
        bind_shredded_database(&mut env, &db, &mut gen).expect("bind shredded inputs");
        let nested = eval_shredded_nested(&shredded, &mut env)
            .unwrap_or_else(|e| panic!("seed {seed}: shredded execution failed for {q}: {e}"));
        let mut direct_env = Env::new(&db);
        let direct = eval_query(&q, &mut direct_env).expect("direct eval");
        assert_eq!(nested, direct, "seed {seed}: Theorem 8 violated for {q}");
        checked += 1;
    }
    assert_eq!(checked as u64, cases);
}

#[test]
fn lemma_12_shredded_outputs_are_consistent() {
    for seed in 0..common::case_count(150) {
        let mut g = QueryGen::new(seed, GenConfig::default());
        let db = g.gen_database();
        let q = g.gen_query(&db);
        let tenv = TypeEnv::from_database(&db);
        let shredded = shred_query(&q, &tenv).expect("shred");
        let mut env = Env::new(&db);
        let mut gen = LabelGen::new();
        bind_shredded_database(&mut env, &db, &mut gen).expect("bind");
        let (flat, ctx) = eval_shredded(&shredded, &mut env)
            .unwrap_or_else(|e| panic!("seed {seed}: shredded execution failed for {q}: {e}"));
        check_consistent(&flat, &shredded.elem_ty, &ctx)
            .unwrap_or_else(|e| panic!("seed {seed}: inconsistent shredded output for {q}: {e}"));
    }
}

#[test]
fn shredded_flat_queries_are_inc_nrc() {
    // The point of the transformation: outputs live in IncNRC⁺ₗ, so they
    // have deltas even when the input query does not.
    for seed in 0..common::case_count(150) {
        let mut g = QueryGen::new(seed, GenConfig::default());
        let db = g.gen_database();
        let q = g.gen_query(&db);
        let tenv = TypeEnv::from_database(&db);
        let shredded = shred_query(&q, &tenv).expect("shred");
        assert!(
            shredded.flat.is_inc_nrc(),
            "seed {seed}: flat part of {q} not IncNRC⁺"
        );
        assert!(
            shredded.ctx.is_inc_nrc(),
            "seed {seed}: ctx part of {q} not IncNRC⁺"
        );
    }
}

#[test]
fn theorem_5_shredded_queries_are_recursively_incrementalizable() {
    // The outputs of shredding live in IncNRC⁺ₗ, so the closed delta rules
    // apply to them *repeatedly*: wrt the shredded input variables, each
    // derivative exists (no InputDependentSng) and the degree drops by one
    // per step, reaching input-independence (Thm. 5).
    use nrc_core::degree::{degree, DegreeEnv};
    use nrc_core::delta::delta_wrt_var;
    use nrc_core::optimize::simplify;
    use nrc_core::shred::{ctx_name, flat_name, shred_type_ctx, shred_type_flat};
    use nrc_data::Type;

    let mut exercised = 0;
    let cases = common::case_count(120);
    for seed in 0..cases {
        let mut g = QueryGen::new(seed, GenConfig::default());
        let db = g.gen_database();
        let q = g.gen_query(&db);
        let tenv_orig = TypeEnv::from_database(&db);
        let shredded = shred_query(&q, &tenv_orig).expect("shred");

        // Shredded-world typing environment.
        let mut tenv = TypeEnv::default();
        for rel in db.relation_names() {
            let elem = db.schema(rel).expect("schema");
            tenv.lets.push((
                flat_name(rel),
                Type::bag(shred_type_flat(elem).expect("flat type")),
            ));
            tenv.lets
                .push((ctx_name(rel), shred_type_ctx(elem).expect("ctx type")));
            for order in 1..=4 {
                tenv.lets.push((
                    format!("Δ{order}_{}", flat_name(rel)),
                    Type::bag(shred_type_flat(elem).expect("flat type")),
                ));
                tenv.lets.push((
                    format!("Δ{order}_{}", ctx_name(rel)),
                    shred_type_ctx(elem).expect("ctx type"),
                ));
            }
        }
        let mut deg_env = DegreeEnv::new();
        for rel in db.relation_names() {
            deg_env.free_vars.insert(flat_name(rel), 1);
            deg_env.free_vars.insert(ctx_name(rel), 1);
        }

        for part in [&shredded.flat, &shredded.ctx] {
            let mut cur = simplify(part, &tenv).expect("simplify");
            let mut order = 1;
            // Differentiate wrt every input variable until input-independent.
            loop {
                let free: Vec<String> = db
                    .relation_names()
                    .flat_map(|r| [flat_name(r), ctx_name(r)])
                    .filter(|v| cur.depends_on_var(v))
                    .collect();
                if free.is_empty() || order > 4 {
                    break;
                }
                let deg_before = degree(&cur, &mut deg_env.clone());
                let var = &free[0];
                let d = delta_wrt_var(&cur, var, &format!("Δ{order}_{var}"), &tenv).unwrap_or_else(
                    |e| panic!("seed {seed}: shredded delta failed (Thm. 5) for {cur}: {e}"),
                );
                cur = simplify(&d, &tenv).expect("simplify δ");
                let deg_after = degree(&cur, &mut deg_env.clone());
                assert!(
                    deg_after < deg_before || deg_before == 0,
                    "seed {seed}: degree did not drop ({deg_before} → {deg_after}) for {cur}"
                );
                order += 1;
                exercised += 1;
            }
        }
    }
    // Coverage floor scales with the dialed case count (~1 derivation per
    // seed after the input-independence filter).
    assert!(
        exercised as u64 > cases * 5 / 6,
        "only {exercised} derivations exercised"
    );
}
