//! Property test for **Proposition 4.1**: for every IncNRC⁺ query `h`,
//! database `R` and update `ΔR`,
//!
//! ```text
//! h[R ⊎ ΔR] = h[R] ⊎ δ_R(h)[R, ΔR]
//! ```
//!
//! checked over hundreds of generator-produced (query, instance, update)
//! triples, with simplified and unsimplified deltas, and for every relation
//! of multi-relation databases.

mod common;

use nrc_core::delta::delta_wrt_rel;
use nrc_core::eval::{eval_query, Env};
use nrc_core::generator::{GenConfig, QueryGen};
use nrc_core::optimize::simplify;
use nrc_core::typecheck::TypeEnv;

#[test]
fn proposition_4_1_holds_on_random_inc_queries() {
    let mut checked = 0;
    let cases = common::case_count(250);
    for seed in 0..cases {
        let mut g = QueryGen::new(seed, GenConfig::default());
        let db = g.gen_database();
        let q = g.gen_inc_query(&db);
        let tenv = TypeEnv::from_database(&db);
        for rel in q.free_relations() {
            let update = g.gen_update(&db, &rel);
            let dq = delta_wrt_rel(&q, &rel, &tenv)
                .unwrap_or_else(|e| panic!("seed {seed}: delta failed for {q}: {e}"));

            // h[R] ⊎ δ(h)
            let mut env_before = Env::new(&db);
            let before = eval_query(&q, &mut env_before)
                .unwrap_or_else(|e| panic!("seed {seed}: eval failed for {q}: {e}"));
            let mut env_delta = Env::new(&db).with_delta(rel.clone(), update.clone());
            let change = eval_query(&dq, &mut env_delta)
                .unwrap_or_else(|e| panic!("seed {seed}: delta eval failed for {dq}: {e}"));
            let incremental = before.union(&change);

            // h[R ⊎ ΔR]
            let mut db2 = db.clone();
            db2.apply_update(&rel, &update).expect("update");
            let mut env_after = Env::new(&db2);
            let recomputed = eval_query(&q, &mut env_after).expect("eval after");

            assert_eq!(
                incremental, recomputed,
                "seed {seed}: Prop 4.1 violated for {q} wrt {rel} with Δ = {update}"
            );

            // The simplified delta is semantically identical.
            let sq = simplify(&dq, &tenv)
                .unwrap_or_else(|e| panic!("seed {seed}: simplify failed for {dq}: {e}"));
            let mut env_s = Env::new(&db).with_delta(rel.clone(), update.clone());
            let change_s = eval_query(&sq, &mut env_s)
                .unwrap_or_else(|e| panic!("seed {seed}: simplified delta eval failed: {e}"));
            assert_eq!(
                change, change_s,
                "seed {seed}: simplification changed δ of {q}"
            );
            assert!(
                sq.node_count() <= dq.node_count(),
                "seed {seed}: simplification grew the delta"
            );
            checked += 1;
        }
    }
    // Coverage floor scales with the dialed case count (most seeds yield
    // at least one free relation to differentiate against).
    assert!(
        checked as u64 > cases * 4 / 5,
        "only {checked} cases exercised"
    );
}

#[test]
fn proposition_4_1_composes_over_update_sequences() {
    // Applying k successive deltas equals recomputation after k updates.
    for seed in 0..common::case_count(60) {
        let mut g = QueryGen::new(seed, GenConfig::default());
        let mut db = g.gen_database();
        let q = g.gen_inc_query(&db);
        let tenv = TypeEnv::from_database(&db);
        let rel = match q.free_relations().into_iter().next() {
            Some(r) => r,
            None => continue,
        };
        let dq = delta_wrt_rel(&q, &rel, &tenv).expect("delta");
        let mut env0 = Env::new(&db);
        let mut materialized = eval_query(&q, &mut env0).expect("eval");
        for _ in 0..4 {
            let update = g.gen_update(&db, &rel);
            let mut env = Env::new(&db).with_delta(rel.clone(), update.clone());
            let change = eval_query(&dq, &mut env).expect("delta eval");
            materialized.union_assign(&change);
            db.apply_update(&rel, &update).expect("update");
        }
        let mut env_final = Env::new(&db);
        let expected = eval_query(&q, &mut env_final).expect("eval final");
        assert_eq!(materialized, expected, "seed {seed}: drift for {q}");
    }
}

#[test]
fn deltas_of_input_independent_queries_are_empty() {
    // Lemma 1 as an end-to-end property.
    for seed in 0..common::case_count(80) {
        let mut g = QueryGen::new(seed, GenConfig::default());
        let db = g.gen_database();
        let q = g.gen_inc_query(&db);
        if !q.free_relations().is_empty() {
            continue;
        }
        let tenv = TypeEnv::from_database(&db);
        let dq = delta_wrt_rel(&q, "R0", &tenv).expect("delta");
        let s = simplify(&dq, &tenv).expect("simplify");
        assert!(
            matches!(s, nrc_core::Expr::Empty { .. }),
            "seed {seed}: δ of input-independent {q} simplified to {s}, not ∅"
        );
    }
}
