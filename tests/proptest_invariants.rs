//! `proptest`-driven invariants on the core data structures: the
//! commutative-group laws of generalized bags (§3), dictionary algebra
//! (§5.2 / App. C.2), and the circuit substrate's arithmetic.

use nrc_circuit::circuit::{from_bits, to_bits};
use nrc_circuit::{refresh_circuit, BagLayout};
use nrc_data::{Bag, Dictionary, Label, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::int),
        "[a-d]{1,3}".prop_map(Value::str),
        any::<bool>().prop_map(Value::bool),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Value::Tuple),
            prop::collection::vec((inner, -3i64..4), 0..3)
                .prop_map(|pairs| Value::Bag(Bag::from_pairs(pairs))),
        ]
    })
}

fn arb_bag() -> impl Strategy<Value = Bag> {
    prop::collection::vec((arb_value(), -4i64..5), 0..6).prop_map(Bag::from_pairs)
}

fn arb_dict() -> impl Strategy<Value = Dictionary> {
    prop::collection::vec((0u32..5, arb_bag()), 0..4).prop_map(|entries| {
        Dictionary::from_pairs(entries.into_iter().map(|(i, b)| (Label::atomic(i), b)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(128))]

    #[test]
    fn bag_union_is_commutative(a in arb_bag(), b in arb_bag()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn bag_union_is_associative(a in arb_bag(), b in arb_bag(), c in arb_bag()) {
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn empty_is_the_identity(a in arb_bag()) {
        prop_assert_eq!(a.union(&Bag::empty()), a.clone());
        prop_assert_eq!(Bag::empty().union(&a), a);
    }

    #[test]
    fn negation_is_the_inverse(a in arb_bag()) {
        prop_assert_eq!(a.union(&a.negate()), Bag::empty());
        prop_assert_eq!(a.negate().negate(), a);
    }

    #[test]
    fn delta_to_always_exists(a in arb_bag(), b in arb_bag()) {
        // The commutative-group property §3 leans on.
        let d = a.delta_to(&b);
        prop_assert_eq!(a.union(&d), b);
    }

    #[test]
    fn product_distributes_over_union(a in arb_bag(), b in arb_bag(), c in arb_bag()) {
        prop_assert_eq!(
            a.product(&b.union(&c)).unwrap(),
            a.product(&b).unwrap().union(&a.product(&c).unwrap())
        );
    }

    #[test]
    fn scaling_matches_repeated_union(a in arb_bag(), k in 0i64..5) {
        let mut acc = Bag::empty();
        for _ in 0..k {
            acc.union_assign(&a);
        }
        prop_assert_eq!(a.scale(k).unwrap(), acc);
    }

    #[test]
    fn cardinality_is_subadditive(a in arb_bag(), b in arb_bag()) {
        prop_assert!(a.union(&b).cardinality() <= a.cardinality() + b.cardinality());
    }

    #[test]
    fn dict_addition_is_commutative(a in arb_dict(), b in arb_dict()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn dict_addition_is_associative(a in arb_dict(), b in arb_dict(), c in arb_dict()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn dict_label_union_is_idempotent(a in arb_dict()) {
        prop_assert_eq!(a.label_union(&a).expect("self-union"), a);
    }

    #[test]
    fn dict_union_of_disjoint_supports_never_errors(
        a in prop::collection::vec((0u32..3, arb_bag()), 0..3),
        b in prop::collection::vec((10u32..13, arb_bag()), 0..3),
    ) {
        let da = Dictionary::from_pairs(a.into_iter().map(|(i, x)| (Label::atomic(i), x)));
        let db = Dictionary::from_pairs(b.into_iter().map(|(i, x)| (Label::atomic(i), x)));
        let u = da.label_union(&db).expect("disjoint supports");
        prop_assert_eq!(u.support_size(), da.support_size() + db.support_size());
    }

    #[test]
    fn bit_codec_roundtrips(v in 0u64..256, k in 1usize..9) {
        prop_assert_eq!(from_bits(&to_bits(v, k)), v % (1 << k));
    }

    #[test]
    fn refresh_circuit_matches_bag_union_mod_2k(
        pairs_v in prop::collection::vec((0i64..6, -7i64..8), 0..5),
        pairs_d in prop::collection::vec((0i64..6, -7i64..8), 0..5),
    ) {
        let k = 4;
        let layout = BagLayout::int_domain(6, k);
        let v = Bag::from_pairs(pairs_v.into_iter().map(|(x, m)| (Value::int(x), m)));
        let d = Bag::from_pairs(pairs_d.into_iter().map(|(x, m)| (Value::int(x), m)));
        let circuit = refresh_circuit(&layout);
        let mut bits = layout.encode(&v);
        bits.extend(layout.encode(&d));
        let out = layout.decode(&circuit.evaluate(&bits));
        let expected = v.union(&d);
        for slot in 0..6 {
            let val = Value::int(slot);
            prop_assert_eq!(
                out.multiplicity(&val).rem_euclid(16),
                expected.multiplicity(&val).rem_euclid(16)
            );
        }
    }
}

/// One step of a random bag-construction sequence, mirrored onto a shadow
/// seed-representation map (`BTreeMap<Value, i64>`, the pre-interning
/// internal form) to check canonical-form and iteration-order invariants.
#[derive(Clone, Debug)]
enum BagOp {
    Insert(Value, i64),
    UnionAssign(Bag),
    ExtendPairs(Vec<(Value, i64)>),
    Difference(Bag),
}

fn arb_bag_op() -> impl Strategy<Value = BagOp> {
    prop_oneof![
        (arb_value(), -4i64..5).prop_map(|(v, m)| BagOp::Insert(v, m)),
        arb_bag().prop_map(BagOp::UnionAssign),
        prop::collection::vec((arb_value(), -3i64..4), 0..4).prop_map(BagOp::ExtendPairs),
        arb_bag().prop_map(BagOp::Difference),
    ]
}

fn shadow_insert(shadow: &mut std::collections::BTreeMap<Value, i64>, v: &Value, m: i64) {
    if m == 0 {
        return;
    }
    let entry = shadow.entry(v.clone()).or_insert(0);
    *entry += m;
    if *entry == 0 {
        shadow.remove(v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(128))]

    /// Canonical form survives every operation sequence — no element is
    /// ever stored with multiplicity zero — and the interned, id-keyed bag
    /// iterates in exactly the order the seed's value-keyed representation
    /// would (`Ord` on `Vid` refines `Ord` on `Value`).
    #[test]
    fn canonical_form_and_seed_order_survive_op_sequences(
        ops in prop::collection::vec(arb_bag_op(), 0..12),
    ) {
        let mut bag = Bag::empty();
        let mut shadow: std::collections::BTreeMap<Value, i64> = Default::default();
        for op in ops {
            match op {
                BagOp::Insert(v, m) => {
                    shadow_insert(&mut shadow, &v, m);
                    bag.insert(v, m);
                }
                BagOp::UnionAssign(b) => {
                    for (v, m) in b.iter() {
                        shadow_insert(&mut shadow, v, m);
                    }
                    bag.union_assign(&b);
                }
                BagOp::ExtendPairs(pairs) => {
                    for (v, m) in &pairs {
                        shadow_insert(&mut shadow, v, *m);
                    }
                    bag.extend_pairs(pairs);
                }
                BagOp::Difference(b) => {
                    for (v, m) in b.iter() {
                        shadow_insert(&mut shadow, v, -m);
                    }
                    bag = bag.difference(&b);
                }
            }
            // No zero multiplicity survives any prefix of the sequence.
            for (_, m) in bag.iter() {
                prop_assert!(m != 0, "zero multiplicity stored");
            }
        }
        // Identical contents *and* identical canonical iteration order.
        let interned: Vec<(Value, i64)> = bag.iter().map(|(v, m)| (v.clone(), m)).collect();
        let seed: Vec<(Value, i64)> = shadow.into_iter().collect();
        prop_assert_eq!(&interned, &seed, "interned order diverged from seed order");
        // Canonical form makes structural equality semantic equality.
        prop_assert_eq!(bag, Bag::from_pairs(seed));
    }

    /// `union_many` and scaled accumulation preserve canonical form and the
    /// seed iteration order too (they build maps in bulk rather than via
    /// `insert`).
    #[test]
    fn bulk_union_preserves_canonical_order(bags in prop::collection::vec(arb_bag(), 0..5)) {
        let merged = Bag::union_many(bags.iter());
        let folded = bags.iter().fold(Bag::empty(), |acc, b| acc.union(b));
        prop_assert_eq!(&merged, &folded);
        for (_, m) in merged.iter() {
            prop_assert!(m != 0);
        }
        let order: Vec<&Value> = merged.iter().map(|(v, _)| v).collect();
        let mut sorted = order.clone();
        sorted.sort();
        prop_assert_eq!(order, sorted, "bulk-built bag not in canonical order");
    }

    /// Dictionary supports iterate in canonical label order under the
    /// id-keyed representation.
    #[test]
    fn dict_support_iterates_in_label_order(d in arb_dict()) {
        let labels: Vec<&Label> = d.support().collect();
        let mut sorted = labels.clone();
        sorted.sort();
        prop_assert_eq!(labels, sorted);
    }
}
