//! `proptest`-driven invariants of concurrent snapshot serving
//! (`nrc-serve`) under random interleavings of ingest, bounded collection,
//! snapshot-take, snapshot-read and snapshot-drop across threads:
//!
//! * **Replay agreement**: every read — from reader threads polling the
//!   published snapshot and from snapshots held across arbitrary amounts
//!   of later churn — equals a sequential replay of the same stream at
//!   that snapshot's batch index.
//! * **No stale reads**: fully iterating a live snapshot's views resolves
//!   every interned element; a slot reclaimed out from under a snapshot
//!   would panic deterministically (`StaleVid`), failing the test — so
//!   passing proves bounded GC never frees a slot a live snapshot can
//!   resolve, wherever collections land in the interleaving.
//! * **Horizon advance**: the pin horizon equals the oldest outstanding
//!   snapshot's epoch, and dropping oldest snapshots advances it.
//!
//! The arena is process-global, so cases serialize and use case-unique
//! payload prefixes (same discipline as `tests/prop_bounded_gc.rs`).

mod common;

use common::{fresh_case, serial};
use nrc_core::builder::{cmp_lit, filter_query, rel};
use nrc_core::expr::CmpOp;
use nrc_data::{intern, Bag};
use nrc_engine::{CollectPolicy, IvmSystem, Parallelism, Strategy, UpdateBatch};
use nrc_serve::{ServingSystem, Snapshot};
use nrc_workloads::{StreamConfig, StreamGen};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The sampled reclamation policies: no collection, tight bounded pacing,
/// self-sized bounded pacing, periodic full sweeps.
fn policy_pool(idx: usize) -> CollectPolicy {
    match idx {
        0 => CollectPolicy::Never,
        1 => CollectPolicy::Bounded {
            max_slots: 3,
            every: 1,
        },
        2 => CollectPolicy::bounded_auto(),
        _ => CollectPolicy::EveryN(2),
    }
}

/// Fully read one snapshot: iterating both views resolves every element id
/// (a reclaimed slot would panic), and the contents are recorded for the
/// replay check.
fn observe(snap: &Snapshot) -> (u64, Bag, Bag) {
    let hot = snap.view("hot").expect("hot view").clone();
    let all = snap.view("all").expect("all view").clone();
    assert_eq!(hot.iter().count(), hot.distinct_count());
    assert_eq!(all.iter().count(), all.distinct_count());
    (snap.batch_index(), hot, all)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(16))]

    /// Random (stream, policy, interleaving) triples with reader threads
    /// polling concurrently: all observations agree with sequential
    /// replay, and the snapshot-pin horizon tracks the oldest outstanding
    /// snapshot.
    #[test]
    fn serving_reads_agree_under_random_interleavings(
        seed in 0u64..10_000,
        nbatches in 1usize..6,
        batch_size in 1usize..8,
        delete_tenths in 0usize..6,
        policy_idx in 0usize..4,
        // (kind, sweep budget, batch index to act before): kind 0 =
        // explicit bounded collect, 1 = take-and-hold a snapshot, 2 =
        // drop the oldest held snapshot.
        actions in prop::collection::vec((0u8..3, 1u64..32, 0usize..6), 0..10),
    ) {
        let _serial = serial();
        let case = fresh_case();
        let cfg = StreamConfig {
            batch_size,
            delete_fraction: delete_tenths as f64 / 10.0,
            genres: 4,
            directors: 4,
            payload_prefix: format!("prop-serve-{case}-"),
            ..StreamConfig::default()
        };
        let mut gen = StreamGen::new(seed, cfg.clone());
        let db = gen.database(20);
        let mut engine = IvmSystem::new(db);
        engine.set_parallelism(Parallelism::Sequential);
        let mut serve = ServingSystem::new(engine).expect("serving system");
        serve.set_collect_policy(policy_pool(policy_idx));
        let hot = filter_query("M", cmp_lit("x", vec![1], CmpOp::Eq, "genre0"));
        serve.register("hot", hot.clone(), Strategy::FirstOrder).expect("hot");
        serve.register("all", rel("M"), Strategy::FirstOrder).expect("all");

        let mut held: Vec<Arc<Snapshot>> = Vec::new();
        let stop = AtomicBool::new(false);
        let observations: Mutex<Vec<(u64, Bag, Bag)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let mut reader = serve.reader();
                let stop = &stop;
                let observations = &observations;
                scope.spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let obs = observe(reader.current());
                        observations.lock().unwrap().push(obs);
                        std::thread::yield_now();
                    }
                });
            }
            for step in 0..nbatches {
                for (kind, budget, at) in &actions {
                    if *at != step {
                        continue;
                    }
                    match kind {
                        0 => {
                            intern::collect_bounded_now(*budget);
                        }
                        1 => held.push(serve.snapshot()),
                        _ => {
                            if !held.is_empty() {
                                held.remove(0);
                            }
                        }
                    }
                }
                let batch = UpdateBatch::from_updates(gen.next_batch());
                serve.apply_batch(&batch).expect("batch");
                // Held snapshots must stay fully readable across every
                // later batch and collection.
                for snap in &held {
                    observations.lock().unwrap().push(observe(snap));
                }
            }
            stop.store(true, Ordering::Release);
        });

        // Sequential replay of the identical stream, one state per batch
        // index.
        let states = common::stream_states(
            seed,
            &cfg,
            20,
            nbatches,
            &[
                ("hot", hot, Strategy::FirstOrder),
                ("all", rel("M"), Strategy::FirstOrder),
            ],
        );
        for (batch_index, hot_obs, all_obs) in observations.into_inner().unwrap() {
            let state = &states[batch_index as usize];
            prop_assert_eq!(
                &hot_obs, &state["hot"],
                "hot view read diverged from replay at batch {}", batch_index
            );
            prop_assert_eq!(
                &all_obs, &state["all"],
                "all view read diverged from replay at batch {}", batch_index
            );
        }

        // Horizon accounting: with readers joined, the outstanding pins
        // are exactly the held snapshots plus the published one, and the
        // horizon is the minimum of their epochs. Dropping oldest held
        // snapshots advances it accordingly.
        loop {
            let mut epochs: Vec<u64> = held.iter().map(|s| s.epoch().0).collect();
            epochs.push(serve.snapshot().epoch().0);
            let oldest = epochs.iter().copied().min().expect("published snapshot");
            let horizon = intern::pin_horizon().expect("serving pins").0;
            prop_assert_eq!(
                horizon, oldest,
                "pin horizon must equal the oldest outstanding snapshot's epoch"
            );
            if held.is_empty() {
                break;
            }
            held.remove(0);
        }
    }
}
