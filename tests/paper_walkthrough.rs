//! An executable walkthrough of the paper's worked examples, wired through
//! the public API end to end (parser → typechecker → shredding → engine).

use nrc_core::builder;
use nrc_core::cost::{cost_against, tcost, Cost};
use nrc_core::degree::degree_of;
use nrc_core::delta::{delta_tower, delta_wrt_rel};
use nrc_core::optimize::simplify;
use nrc_core::typecheck::{typecheck, TypeEnv};
use nrc_data::database::{example_movies, example_movies_update};
use nrc_data::{Bag, Type, Value};
use nrc_engine::{IvmSystem, Strategy};
use nrc_parser::parse_program;

/// §2, tables 1–4: `related` before and after `ΔM`, maintained
/// incrementally through the shredded engine, written in surface syntax.
#[test]
fn section_2_motivating_example() {
    let prog = parse_program(
        r#"
        relation M(name: Str, gen: Str, dir: Str);
        query related :=
          for m in M union
            <m.name,
             for m2 in M
               where m.name != m2.name && (m.gen == m2.gen || m.dir == m2.dir)
               union sng(m2.name)>;
        "#,
    )
    .expect("parse");
    let (_, related) = &prog.queries[0];

    let db = example_movies();
    // Typechecks to Bag(Str × Bag(Str)).
    assert_eq!(
        typecheck(related, &db).expect("typecheck"),
        Type::bag(Type::pair(
            Type::Base(nrc_data::BaseType::Str),
            Type::bag(Type::Base(nrc_data::BaseType::Str))
        ))
    );

    let mut sys = IvmSystem::new(db);
    sys.register("related", related.clone(), Strategy::Shredded)
        .expect("register");

    let inner = |bag: &Bag, movie: &str| -> Vec<String> {
        bag.iter()
            .find(|(v, _)| v.project(0).unwrap() == &Value::str(movie))
            .map(|(v, _)| {
                v.project(1)
                    .unwrap()
                    .as_bag()
                    .unwrap()
                    .iter()
                    .map(|(w, _)| w.as_base().unwrap().to_string())
                    .collect()
            })
            .unwrap_or_default()
    };

    // Paper's first table.
    let before = sys.view("related").expect("view");
    assert!(inner(&before, "Drive").is_empty());
    assert_eq!(inner(&before, "Skyfall"), vec!["\"Rush\""]);
    assert_eq!(inner(&before, "Rush"), vec!["\"Skyfall\""]);

    // Paper's second table after ΔM = {⟨Jarhead, Drama, Mendes⟩}.
    sys.apply_update("M", &example_movies_update())
        .expect("update");
    let after = sys.view("related").expect("view");
    assert_eq!(inner(&after, "Drive"), vec!["\"Jarhead\""]);
    assert_eq!(inner(&after, "Skyfall"), vec!["\"Jarhead\"", "\"Rush\""]);
    assert_eq!(inner(&after, "Rush"), vec!["\"Skyfall\""]);
    assert_eq!(inner(&after, "Jarhead"), vec!["\"Drive\"", "\"Skyfall\""]);
}

/// Example 2/3: `filter_p` and its delta `filter_p[ΔR]`.
#[test]
fn examples_2_and_3_filter() {
    let db = example_movies();
    let tenv = TypeEnv::from_database(&db);
    let q = builder::filter_query(
        "M",
        builder::cmp_lit("x", vec![1], nrc_core::CmpOp::Eq, "Drama"),
    );
    let d = simplify(&delta_wrt_rel(&q, "M", &tenv).expect("delta"), &tenv).expect("simplify");
    // The delta is literally the filter over ΔM.
    assert_eq!(
        d.to_string(),
        "for x in ΔM union for __w in p[x.2 == \"Drama\"] union sng(x)"
    );
}

/// Example 4: the delta tower of `flatten(R) × flatten(R)` terminates at
/// the input-independent second-order delta.
#[test]
fn example_4_higher_order_deltas() {
    let mut db = nrc_data::Database::new();
    db.declare("R", Type::bag(Type::Base(nrc_data::BaseType::Int)));
    let tenv = TypeEnv::from_database(&db);
    let h = builder::self_product_of_flatten("R");
    assert_eq!(degree_of(&h), 2);
    let tower = delta_tower(&h, "R", &tenv, 5).expect("tower");
    assert_eq!(tower.len(), 3);
    // δ²(h) = flatten(ΔR)×flatten(Δ′R) ⊎ flatten(Δ′R)×flatten(ΔR): exactly
    // the paper's display (the ΔR×ΔR term belongs to δ¹, not δ²).
    let d2 = tower[2].to_string();
    assert!(
        d2.contains("flatten(ΔR)") && d2.contains("flatten(Δ^2R)"),
        "δ² = {d2}"
    );
    assert!(!tower[2].depends_on_rel("R"));
}

/// Example 5: `size(R) = 2{⟨1, 3{1}⟩}` for the genre/movies bag.
#[test]
fn example_5_size() {
    let ty = Type::pair(
        Type::Base(nrc_data::BaseType::Str),
        Type::bag(Type::Base(nrc_data::BaseType::Str)),
    );
    let r = Bag::from_values([
        Value::pair(
            Value::str("Comedy"),
            Value::Bag(Bag::from_values([Value::str("Carnage")])),
        ),
        Value::pair(
            Value::str("Animation"),
            Value::Bag(Bag::from_values([
                Value::str("Up"),
                Value::str("Shrek"),
                Value::str("Cars"),
            ])),
        ),
    ]);
    assert_eq!(
        nrc_core::cost::size_of_bag(&r, &ty),
        Cost::bag(2, Cost::Tuple(vec![Cost::One, Cost::bag(3, Cost::One)]))
    );
}

/// Example 6: `C[[related[M]]] = |M|{⟨1, |M|{1}⟩}` and the running-time
/// bound `Ω(|M|(1+|M|))`.
#[test]
fn example_6_cost_of_related() {
    let db = example_movies();
    let c = cost_against(&builder::related_query(), &db, 1).expect("cost");
    assert_eq!(
        c,
        Cost::bag(3, Cost::Tuple(vec![Cost::One, Cost::bag(3, Cost::One)]))
    );
    assert_eq!(tcost(&c), 12);
}

/// Example 7 / §2.2: the dictionary of `relatedΓ` maps one label per movie
/// to its related-titles bag, extended under updates (domain maintenance).
#[test]
fn section_2_2_dictionary_domain_maintenance() {
    let db = example_movies();
    let mut sys = IvmSystem::new(db);
    sys.register("related", builder::related_query(), Strategy::Shredded)
        .expect("register");
    assert_eq!(sys.stats("related").expect("stats").materialized_aux, 3);
    sys.apply_update("M", &example_movies_update())
        .expect("update");
    // A definition for Jarhead's label was initialized.
    assert_eq!(sys.stats("related").expect("stats").materialized_aux, 4);
    // And deletion shrinks the domain again (garbage collection of
    // unreachable labels).
    sys.apply_update("M", &example_movies_update().negate())
        .expect("update");
    assert_eq!(sys.stats("related").expect("stats").materialized_aux, 3);
}
