//! Kill-point differential crash-recovery harness — the durability PR's
//! headline property: an injected-failpoint workload killed at a random
//! byte offset of its durable output (mid-record, mid-checkpoint, between
//! fsyncs — wherever the byte lands), then recovered, must equal a
//! never-crashed sequential replay of the same stream, for all four
//! maintenance strategies. Plus the satellite properties:
//!
//! * **WAL replay is idempotent and prefix-closed**: scanning is
//!   side-effect-free, every byte-truncation of the log scans to a record
//!   prefix, and replaying that prefix reproduces exactly the sequential
//!   state at its batch index — a torn or garbage tail is truncated, never
//!   mis-applied.
//! * **Checkpoint round-trip across GC**: state persisted under
//!   `CollectPolicy::Bounded` and recovered after arena slot reuse answers
//!   `scan`/`get`/`lookup_label` identically — nothing arena-dependent (no
//!   possible `StaleVid`) lives in the on-disk format.
//! * **Double crash**: crashing again during post-recovery ingest and
//!   recovering a second (and third) time stays on the reference replay —
//!   recovery is idempotent.
//!
//! The arena is process-global, so cases serialize and use case-unique
//! payload prefixes (the shared discipline in `tests/common`).

mod common;

use common::{fresh_case, serial};
use nrc_core::builder::{cmp_lit, filter_query, rel, related_query};
use nrc_core::expr::CmpOp;
use nrc_core::Expr;
use nrc_data::{Bag, Value};
use nrc_durable::{
    wal, DurableError, DurableOptions, DurableSystem, FsyncPolicy, KillPoint, ViewSpec, Wal,
    WAL_FILE,
};
use nrc_engine::{CollectPolicy, Strategy, UpdateBatch, ViewStateSnapshot};
use nrc_workloads::{kill_offsets, RecoveryPlan, StreamConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A self-cleaning scratch directory under the system temp dir, unique per
/// (process, case, tag) so parallel test binaries never collide.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str, case: u64) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "nrc-prop-recovery-{}-{case}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Queries every strategy accepts (IncNRC⁺, flat) over the streaming
/// movies schema — the kill-point differential runs all four strategies
/// over the same query.
fn query_pool(idx: usize) -> Expr {
    match idx {
        0 => rel("M"),
        1 => filter_query("M", cmp_lit("x", vec![1], CmpOp::Eq, "genre0")),
        _ => filter_query("M", cmp_lit("x", vec![1], CmpOp::Eq, "genre1")),
    }
}

/// The sampled WAL fsync policies: every one of the three variants, with
/// two `EveryN` cadences.
fn fsync_pool(idx: usize) -> FsyncPolicy {
    match idx {
        0 => FsyncPolicy::EveryBatch,
        1 => FsyncPolicy::EveryN(2),
        2 => FsyncPolicy::EveryN(3),
        _ => FsyncPolicy::Never,
    }
}

fn opts(fsync: FsyncPolicy, checkpoint_every: u64, kill: Option<Arc<KillPoint>>) -> DurableOptions {
    DurableOptions {
        fsync,
        checkpoint_every,
        kill,
    }
}

/// Assert every view of `sys` equals the reference replay state.
fn check_views(
    sys: &DurableSystem,
    expected: &BTreeMap<String, Bag>,
    at: &str,
) -> Result<(), TestCaseError> {
    for (name, want) in expected {
        prop_assert_eq!(
            &sys.view(name).expect("recovered view"),
            want,
            "view {} diverged from the uncrashed replay {}",
            name,
            at
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(12))]

    /// The headline differential: ingest the plan once uncrashed (metering
    /// the guarded byte volume), re-run it with a kill budget at a random
    /// byte of that volume, recover, and require the recovered state to
    /// equal the sequential replay at the recovered batch index — then
    /// crash *again* mid-continuation and recover twice more.
    #[test]
    fn recovered_state_equals_uncrashed_replay(
        seed in 0u64..10_000,
        nbatches in 1usize..7,
        batch_size in 1usize..6,
        delete_tenths in 0usize..5,
        query_idx in 0usize..3,
        fsync_idx in 0usize..4,
        checkpoint_every in 0u64..4,
        kill_salt in 0u64..10_000,
    ) {
        let _serial = serial();
        let case = fresh_case();
        let cfg = StreamConfig {
            batch_size,
            delete_fraction: delete_tenths as f64 / 10.0,
            genres: 3,
            directors: 3,
            payload_prefix: format!("prop-rec-{case}-"),
            ..StreamConfig::default()
        };
        let plan = RecoveryPlan::generate(seed, cfg, 12, nbatches);
        let q = query_pool(query_idx);
        let view_list = [
            ("re", q.clone(), Strategy::Reevaluate),
            ("fo", q.clone(), Strategy::FirstOrder),
            ("rc", q.clone(), Strategy::Recursive),
            ("sh", q.clone(), Strategy::Shredded),
        ];
        let states = common::recovery_plan_states(&plan, &view_list);
        let specs: Vec<ViewSpec> = view_list
            .iter()
            .map(|(n, q, s)| ViewSpec::new(*n, q.clone(), *s))
            .collect();
        let fsync = fsync_pool(fsync_idx);

        // --- Uncrashed run: the reference, metered for its byte volume ---
        let meter = KillPoint::arm(u64::MAX);
        let dir_ok = TempDir::new("uncrashed", case);
        let mut ok_sys = DurableSystem::create(
            dir_ok.path(),
            plan.db.clone(),
            &specs,
            opts(fsync, checkpoint_every, Some(Arc::clone(&meter))),
        ).expect("create uncrashed");
        for batch in &plan.batches {
            ok_sys
                .apply_batch(&UpdateBatch::from_updates(batch.iter().cloned()))
                .expect("uncrashed apply");
        }
        check_views(&ok_sys, &states[nbatches], "with no crash at all")?;
        let total = u64::MAX - meter.remaining();
        prop_assert!(total > 0, "ingest must write guarded bytes");
        drop(ok_sys);

        // --- Crashed run: identical stream, kill at a random byte ---
        let budget = kill_offsets(seed ^ kill_salt, total, 1)[0];
        let dir = TempDir::new("crashed", case);
        let mut crashed = DurableSystem::create(
            dir.path(),
            plan.db.clone(),
            &specs,
            opts(fsync, checkpoint_every, Some(KillPoint::arm(budget))),
        ).expect("create crashed");
        let mut acked = 0u64;
        let mut died = false;
        for batch in &plan.batches {
            match crashed.apply_batch(&UpdateBatch::from_updates(batch.iter().cloned())) {
                Ok(()) => acked += 1,
                Err(e) => {
                    prop_assert!(e.is_kill(), "only the injected kill may fail: {}", e);
                    died = true;
                    break;
                }
            }
        }
        if died {
            // The instance is poisoned: nothing further may reach the log.
            prop_assert!(crashed.is_dead());
            let refused = crashed
                .apply_batch(&UpdateBatch::from_updates(plan.batches[0].iter().cloned()));
            prop_assert!(matches!(refused, Err(DurableError::Dead)));
        }
        drop(crashed); // process death: completed write()s survive

        // --- First recovery: on the reference replay, near the ack line ---
        let (rec, rstats) = DurableSystem::recover(
            dir.path(),
            &specs,
            opts(fsync, checkpoint_every, None),
        ).expect("first recovery");
        let idx = rec.batch_index();
        // Log-before-apply: every acked batch is durable, and at most the
        // one in-flight batch beyond the ack line can have reached the log.
        prop_assert!(
            idx >= acked && idx <= acked + 1,
            "recovered to batch {} but {} were acked",
            idx,
            acked
        );
        prop_assert_eq!(
            rstats.batches_replayed,
            idx - rstats.checkpoint_index,
            "replay must cover exactly the gap from checkpoint to tip"
        );
        check_views(&rec, &states[idx as usize], "after the first crash")?;
        drop(rec);

        // --- Double crash: continue ingest, killed again at a new byte ---
        let budget2 = kill_offsets(kill_salt.wrapping_add(seed).wrapping_add(1), total, 1)[0];
        let (mut cont, _) = DurableSystem::recover(
            dir.path(),
            &specs,
            opts(fsync, checkpoint_every, Some(KillPoint::arm(budget2))),
        ).expect("recovery for continuation");
        prop_assert_eq!(cont.batch_index(), idx, "re-recovery must land on the same index");
        let mut acked2 = idx;
        for batch in &plan.batches[idx as usize..] {
            match cont.apply_batch(&UpdateBatch::from_updates(batch.iter().cloned())) {
                Ok(()) => acked2 += 1,
                Err(e) => {
                    prop_assert!(e.is_kill(), "only the injected kill may fail: {}", e);
                    break;
                }
            }
        }
        drop(cont);

        // --- Second recovery, then recovery-after-recovery ---
        let (rec2, _) = DurableSystem::recover(
            dir.path(),
            &specs,
            opts(fsync, checkpoint_every, None),
        ).expect("second recovery");
        let idx2 = rec2.batch_index();
        prop_assert!(
            idx2 >= acked2 && idx2 <= acked2 + 1,
            "second recovery reached batch {} but {} were acked",
            idx2,
            acked2
        );
        check_views(&rec2, &states[idx2 as usize], "after the second crash")?;
        drop(rec2);

        let (rec3, rstats3) = DurableSystem::recover(
            dir.path(),
            &specs,
            opts(fsync, checkpoint_every, None),
        ).expect("recovery after recovery");
        prop_assert_eq!(rec3.batch_index(), idx2, "recovery must be idempotent");
        prop_assert_eq!(
            rstats3.torn_bytes_truncated, 0,
            "the earlier recovery already truncated the torn tail"
        );
        check_views(&rec3, &states[idx2 as usize], "after recovering twice in a row")?;
    }

    /// WAL replay is idempotent and prefix-closed: scanning is read-only,
    /// any byte-truncation scans to a record prefix, and replaying that
    /// prefix reproduces the sequential state at its index exactly.
    #[test]
    fn wal_replay_is_idempotent_and_prefix_closed(
        seed in 0u64..10_000,
        nbatches in 1usize..6,
        batch_size in 1usize..5,
        delete_tenths in 0usize..5,
        cut_salt in 0u64..10_000,
    ) {
        let _serial = serial();
        let case = fresh_case();
        let cfg = StreamConfig {
            batch_size,
            delete_fraction: delete_tenths as f64 / 10.0,
            genres: 3,
            directors: 3,
            payload_prefix: format!("prop-wal-{case}-"),
            ..StreamConfig::default()
        };
        let plan = RecoveryPlan::generate(seed, cfg, 12, nbatches);
        let view_list = [("all", rel("M"), Strategy::FirstOrder)];
        let states = common::recovery_plan_states(&plan, &view_list);

        let dir = TempDir::new("wal", case);
        std::fs::create_dir_all(dir.path()).expect("mkdir");
        let path = dir.path().join(WAL_FILE);
        let mut log = Wal::create(&path, FsyncPolicy::Never, None).expect("create wal");
        for (i, batch) in plan.batches.iter().enumerate() {
            log.append(i as u64 + 1, &UpdateBatch::from_updates(batch.iter().cloned()))
                .expect("append");
        }
        drop(log);

        // Scanning twice observes the identical record sequence and leaves
        // the file untouched.
        let full = wal::scan(&path).expect("scan");
        let again = wal::scan(&path).expect("rescan");
        let indices: Vec<u64> = full.records.iter().map(|r| r.batch_index).collect();
        prop_assert_eq!(
            &indices,
            &again.records.iter().map(|r| r.batch_index).collect::<Vec<_>>()
        );
        prop_assert_eq!(indices, (1..=nbatches as u64).collect::<Vec<_>>());
        prop_assert_eq!(full.torn_bytes(), 0);

        // Truncate at a random byte: the scan must yield a record prefix,
        // and replaying it lands exactly on the sequential state.
        let cut = kill_offsets(seed ^ cut_salt, full.file_len, 1)[0];
        let bytes = std::fs::read(&path).expect("read wal");
        let cut_path = dir.path().join("cut.wal");
        std::fs::write(&cut_path, &bytes[..cut as usize]).expect("write cut");
        let prefix = wal::scan(&cut_path).expect("scan cut");
        let k = prefix.records.len();
        prop_assert!(k <= nbatches);
        prop_assert_eq!(
            prefix.records.iter().map(|r| r.batch_index).collect::<Vec<_>>(),
            (1..=k as u64).collect::<Vec<_>>(),
            "a truncated log must scan to a contiguous record prefix"
        );

        // Replay determinism/idempotence: folding the scanned prefix into
        // the replay helper twice gives the same state both times, equal
        // to the reference at batch index k.
        let replayed: Vec<Vec<(String, Bag)>> = plan.batches[..k].to_vec();
        for _ in 0..2 {
            let got = common::plan_states(plan.db.clone(), &replayed, &view_list);
            prop_assert_eq!(
                &got[k]["all"],
                &states[k]["all"],
                "prefix replay diverged at batch {}",
                k
            );
        }
    }

    /// Checkpoint round-trip across GC: persist under
    /// `CollectPolicy::Bounded`, drive arena slot reuse after the writer
    /// dies, recover, and require `scan`/`get`/`lookup_label` agreement —
    /// the on-disk format holds no arena-dependent state.
    #[test]
    fn checkpoint_round_trip_survives_slot_reuse(
        seed in 0u64..10_000,
        nbatches in 1usize..5,
        batch_size in 1usize..6,
        churn in 8usize..48,
    ) {
        let _serial = serial();
        let case = fresh_case();
        let cfg = StreamConfig {
            batch_size,
            delete_fraction: 0.4,
            genres: 3,
            directors: 3,
            payload_prefix: format!("prop-ckpt-{case}-"),
            ..StreamConfig::default()
        };
        let plan = RecoveryPlan::generate(seed, cfg, 10, nbatches);
        let specs = [
            ViewSpec::new("all", rel("M"), Strategy::FirstOrder),
            ViewSpec::new("sh", related_query(), Strategy::Shredded),
        ];

        let dir = TempDir::new("ckpt", case);
        let mut sys = DurableSystem::create(
            dir.path(),
            plan.db.clone(),
            &specs,
            opts(FsyncPolicy::Never, 1, None),
        ).expect("create");
        sys.set_collect_policy(CollectPolicy::Bounded { max_slots: 4, every: 1 });
        for batch in &plan.batches {
            sys.apply_batch(&UpdateBatch::from_updates(batch.iter().cloned()))
                .expect("apply");
        }
        sys.checkpoint_now().expect("checkpoint");
        let all_before = scan_pairs(&sys);
        let related_before = related_pairs(&sys);
        drop(sys);

        // Drive slot reuse: drain the dropped system's garbage, then churn
        // fresh payloads into the freed slots. If a Vid (rather than its
        // value) had leaked into the checkpoint, recovery below would now
        // resolve it against a reused slot.
        common::drain();
        let churn_case = fresh_case();
        let churn_bag = Bag::from_values(
            (0..churn as u16).map(|i| common::payload("prop-ckpt-churn", churn_case, i)),
        );

        let (rec, rstats) = DurableSystem::recover(
            dir.path(),
            &specs,
            opts(FsyncPolicy::Never, 1, None),
        ).expect("recover across GC");
        prop_assert_eq!(
            rstats.batches_replayed, 0,
            "the tip checkpoint leaves nothing to replay"
        );
        prop_assert_eq!(rec.batch_index(), nbatches as u64);

        // scan: identical ordered pairs; get: identical multiplicities.
        let all_after = scan_pairs(&rec);
        prop_assert_eq!(&all_before, &all_after, "scan diverged across the round-trip");
        let snap = rec.snapshot();
        for (v, m) in &all_before {
            prop_assert_eq!(snap.get("all", v).expect("get"), *m);
        }
        drop(snap);

        // lookup_label: the recovered shredded view's label indirection
        // resolves every flat tuple to the same (name, inner-bag) multiset
        // the original served — label *identity* may differ across runs,
        // label *meaning* may not.
        prop_assert_eq!(
            related_before,
            related_pairs(&rec),
            "label resolution diverged across the round-trip"
        );
        drop(churn_bag);
    }
}

/// Ordered `(value, multiplicity)` scan of the `all` view via the
/// published snapshot.
fn scan_pairs(sys: &DurableSystem) -> Vec<(Value, i64)> {
    sys.snapshot().scan("all", usize::MAX).expect("scan")
}

/// The shredded `related` view decoded through its label indirection: each
/// flat tuple `<name, label>` resolved to `(name, inner pairs, mult)` via
/// `Snapshot::lookup_label`, sorted — a label-allocation-independent
/// fingerprint of the view's meaning.
#[allow(clippy::type_complexity)]
fn related_pairs(sys: &DurableSystem) -> Vec<(Value, Vec<(Value, i64)>, i64)> {
    let flat = match sys.serving().engine().view_state("sh").expect("view state") {
        ViewStateSnapshot::Shredded { flat, .. } => flat.clone(),
        other => panic!("sh must snapshot shredded, got {other:?}"),
    };
    let snap = sys.snapshot();
    let mut out: Vec<(Value, Vec<(Value, i64)>, i64)> = flat
        .iter()
        .map(|(v, m)| {
            let name = v.project(0).expect("name field").clone();
            let label = v
                .project(1)
                .expect("label field")
                .as_label()
                .expect("label")
                .clone();
            let inner = snap
                .lookup_label("sh", &label)
                .expect("lookup")
                .expect("label must define a bag");
            (name, inner.iter().map(|(x, k)| (x.clone(), k)).collect(), m)
        })
        .collect();
    out.sort();
    out
}
