//! Kill-point differential crash-recovery harness — the durability PR's
//! headline property: an injected-failpoint workload killed at a random
//! byte offset of its durable output (mid-record, mid-checkpoint, between
//! fsyncs — wherever the byte lands), then recovered, must equal a
//! never-crashed sequential replay of the same stream, for all four
//! maintenance strategies. Plus the satellite properties:
//!
//! * **WAL replay is idempotent and prefix-closed**: scanning is
//!   side-effect-free, every byte-truncation of the log scans to a record
//!   prefix, and replaying that prefix reproduces exactly the sequential
//!   state at its batch index — a torn or garbage tail is truncated, never
//!   mis-applied.
//! * **Checkpoint round-trip across GC**: state persisted under
//!   `CollectPolicy::Bounded` and recovered after arena slot reuse answers
//!   `scan`/`get`/`lookup_label` identically — nothing arena-dependent (no
//!   possible `StaleVid`) lives in the on-disk format.
//! * **Double crash**: crashing again during post-recovery ingest and
//!   recovering a second (and third) time stays on the reference replay —
//!   recovery is idempotent.
//! * **Point-in-time differential**: `recover_at(k)` equals the uncrashed
//!   sequential replay at batch `k` — at, below and above checkpoint
//!   indices — is read-only, idempotent, and leaves the live directory
//!   recoverable to its tip; `TruncateAtCheckpoint` turns pruned targets
//!   into `HistoryTruncated`, never silently-wrong state.
//! * **Catalog recovery**: text-registered views come back from the
//!   directory alone (no caller `ViewSpec`s), a kill inside
//!   `register_query`'s durable write never leaves the directory
//!   unrecoverable (the old whole-set integrity gate did), and a caller
//!   spec the checkpoint has never seen registers fresh instead of
//!   misdiagnosing as corruption.
//! * **Backfill differential**: a view backfilled after the full stream
//!   equals the same view registered from batch 0 — final state *and*
//!   per-batch delta feed — for all four strategies; `KeepAll` retention
//!   makes it possible, `TruncateAtCheckpoint` makes it fail loudly.
//!
//! The arena is process-global, so cases serialize and use case-unique
//! payload prefixes (the shared discipline in `tests/common`).

mod common;

use common::{fresh_case, serial};
use nrc_core::builder::{cmp_lit, filter_query, rel, related_query};
use nrc_core::expr::CmpOp;
use nrc_core::Expr;
use nrc_data::{Bag, Value};
use nrc_durable::{
    wal, DurableError, DurableOptions, DurableSystem, FsyncPolicy, KillPoint, LogRetention,
    ViewSpec, Wal,
};
use nrc_engine::{CollectPolicy, Strategy, UpdateBatch, ViewStateSnapshot};
use nrc_workloads::{kill_offsets, RecoveryPlan, StreamConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A self-cleaning scratch directory under the system temp dir, unique per
/// (process, case, tag) so parallel test binaries never collide.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str, case: u64) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "nrc-prop-recovery-{}-{case}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Queries every strategy accepts (IncNRC⁺, flat) over the streaming
/// movies schema — the kill-point differential runs all four strategies
/// over the same query.
fn query_pool(idx: usize) -> Expr {
    match idx {
        0 => rel("M"),
        1 => filter_query("M", cmp_lit("x", vec![1], CmpOp::Eq, "genre0")),
        _ => filter_query("M", cmp_lit("x", vec![1], CmpOp::Eq, "genre1")),
    }
}

/// The text twin of `query_pool(1)`, for the text-registration paths.
const FILTER_SRC: &str = "for x in M where x.1 == \"genre0\" union sng(x)";

/// The sampled WAL fsync policies: every one of the three variants, with
/// two `EveryN` cadences.
fn fsync_pool(idx: usize) -> FsyncPolicy {
    match idx {
        0 => FsyncPolicy::EveryBatch,
        1 => FsyncPolicy::EveryN(2),
        2 => FsyncPolicy::EveryN(3),
        _ => FsyncPolicy::Never,
    }
}

fn opts(fsync: FsyncPolicy, checkpoint_every: u64, kill: Option<Arc<KillPoint>>) -> DurableOptions {
    DurableOptions {
        fsync,
        checkpoint_every,
        retention: LogRetention::KeepAll,
        kill,
    }
}

/// Assert every view of `sys` equals the reference replay state.
fn check_views(
    sys: &DurableSystem,
    expected: &BTreeMap<String, Bag>,
    at: &str,
) -> Result<(), TestCaseError> {
    for (name, want) in expected {
        prop_assert_eq!(
            &sys.view(name).expect("recovered view"),
            want,
            "view {} diverged from the uncrashed replay {}",
            name,
            at
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(12))]

    /// The headline differential: ingest the plan once uncrashed (metering
    /// the guarded byte volume), re-run it with a kill budget at a random
    /// byte of that volume, recover, and require the recovered state to
    /// equal the sequential replay at the recovered batch index — then
    /// crash *again* mid-continuation and recover twice more.
    ///
    /// Recovery here is catalog-only (`recover`, no specs): every builder
    /// query in the pool has a surface form, so the directory describes
    /// itself.
    #[test]
    fn recovered_state_equals_uncrashed_replay(
        seed in 0u64..10_000,
        nbatches in 1usize..7,
        batch_size in 1usize..6,
        delete_tenths in 0usize..5,
        query_idx in 0usize..3,
        fsync_idx in 0usize..4,
        checkpoint_every in 0u64..4,
        kill_salt in 0u64..10_000,
    ) {
        let _serial = serial();
        let case = fresh_case();
        let cfg = StreamConfig {
            batch_size,
            delete_fraction: delete_tenths as f64 / 10.0,
            genres: 3,
            directors: 3,
            payload_prefix: format!("prop-rec-{case}-"),
            ..StreamConfig::default()
        };
        let plan = RecoveryPlan::generate(seed, cfg, 12, nbatches);
        let q = query_pool(query_idx);
        let view_list = [
            ("re", q.clone(), Strategy::Reevaluate),
            ("fo", q.clone(), Strategy::FirstOrder),
            ("rc", q.clone(), Strategy::Recursive),
            ("sh", q.clone(), Strategy::Shredded),
        ];
        let states = common::recovery_plan_states(&plan, &view_list);
        let specs: Vec<ViewSpec> = view_list
            .iter()
            .map(|(n, q, s)| ViewSpec::new(*n, q.clone(), *s))
            .collect();
        let fsync = fsync_pool(fsync_idx);

        // --- Uncrashed run: the reference, metered for its byte volume ---
        let meter = KillPoint::arm(u64::MAX);
        let dir_ok = TempDir::new("uncrashed", case);
        let mut ok_sys = DurableSystem::create(
            dir_ok.path(),
            plan.db.clone(),
            &specs,
            opts(fsync, checkpoint_every, Some(Arc::clone(&meter))),
        ).expect("create uncrashed");
        for batch in &plan.batches {
            ok_sys
                .apply_batch(&UpdateBatch::from_updates(batch.iter().cloned()))
                .expect("uncrashed apply");
        }
        check_views(&ok_sys, &states[nbatches], "with no crash at all")?;
        let total = u64::MAX - meter.remaining();
        prop_assert!(total > 0, "ingest must write guarded bytes");
        drop(ok_sys);

        // --- Crashed run: identical stream, kill at a random byte ---
        let budget = kill_offsets(seed ^ kill_salt, total, 1)[0];
        let dir = TempDir::new("crashed", case);
        let mut crashed = DurableSystem::create(
            dir.path(),
            plan.db.clone(),
            &specs,
            opts(fsync, checkpoint_every, Some(KillPoint::arm(budget))),
        ).expect("create crashed");
        let mut acked = 0u64;
        let mut died = false;
        for batch in &plan.batches {
            match crashed.apply_batch(&UpdateBatch::from_updates(batch.iter().cloned())) {
                Ok(()) => acked += 1,
                Err(e) => {
                    prop_assert!(e.is_kill(), "only the injected kill may fail: {}", e);
                    died = true;
                    break;
                }
            }
        }
        if died {
            // The instance is poisoned: nothing further may reach the log.
            prop_assert!(crashed.is_dead());
            let refused = crashed
                .apply_batch(&UpdateBatch::from_updates(plan.batches[0].iter().cloned()));
            prop_assert!(matches!(refused, Err(DurableError::Dead)));
        }
        drop(crashed); // process death: completed write()s survive

        // --- First recovery: on the reference replay, near the ack line ---
        let (rec, rstats) = DurableSystem::recover(
            dir.path(),
            opts(fsync, checkpoint_every, None),
        ).expect("first recovery");
        let idx = rec.batch_index();
        // Log-before-apply: every acked batch is durable, and at most the
        // one in-flight batch beyond the ack line can have reached the log.
        prop_assert!(
            idx >= acked && idx <= acked + 1,
            "recovered to batch {} but {} were acked",
            idx,
            acked
        );
        prop_assert_eq!(
            rstats.batches_replayed,
            idx - rstats.checkpoint_index,
            "replay must cover exactly the gap from checkpoint to tip"
        );
        // The stats split: a recovered instance has written no checkpoint
        // of its own, yet knows the directory's newest checkpoint index.
        let dstats = rec.durable_stats();
        prop_assert_eq!(dstats.checkpoints_written, 0, "recovery writes no checkpoint");
        prop_assert_eq!(dstats.last_checkpoint_index, rstats.checkpoint_index);
        check_views(&rec, &states[idx as usize], "after the first crash")?;
        drop(rec);

        // --- Double crash: continue ingest, killed again at a new byte ---
        let budget2 = kill_offsets(kill_salt.wrapping_add(seed).wrapping_add(1), total, 1)[0];
        let (mut cont, _) = DurableSystem::recover(
            dir.path(),
            opts(fsync, checkpoint_every, Some(KillPoint::arm(budget2))),
        ).expect("recovery for continuation");
        prop_assert_eq!(cont.batch_index(), idx, "re-recovery must land on the same index");
        let mut acked2 = idx;
        for batch in &plan.batches[idx as usize..] {
            match cont.apply_batch(&UpdateBatch::from_updates(batch.iter().cloned())) {
                Ok(()) => acked2 += 1,
                Err(e) => {
                    prop_assert!(e.is_kill(), "only the injected kill may fail: {}", e);
                    break;
                }
            }
        }
        drop(cont);

        // --- Second recovery, then recovery-after-recovery ---
        let (rec2, _) = DurableSystem::recover(
            dir.path(),
            opts(fsync, checkpoint_every, None),
        ).expect("second recovery");
        let idx2 = rec2.batch_index();
        prop_assert!(
            idx2 >= acked2 && idx2 <= acked2 + 1,
            "second recovery reached batch {} but {} were acked",
            idx2,
            acked2
        );
        check_views(&rec2, &states[idx2 as usize], "after the second crash")?;
        drop(rec2);

        let (rec3, rstats3) = DurableSystem::recover(
            dir.path(),
            opts(fsync, checkpoint_every, None),
        ).expect("recovery after recovery");
        prop_assert_eq!(rec3.batch_index(), idx2, "recovery must be idempotent");
        prop_assert_eq!(
            rstats3.torn_bytes_truncated, 0,
            "the earlier recovery already truncated the torn tail"
        );
        check_views(&rec3, &states[idx2 as usize], "after recovering twice in a row")?;
    }

    /// WAL replay is idempotent and prefix-closed: scanning is read-only,
    /// any byte-truncation scans to a record prefix, and replaying that
    /// prefix reproduces the sequential state at its index exactly.
    #[test]
    fn wal_replay_is_idempotent_and_prefix_closed(
        seed in 0u64..10_000,
        nbatches in 1usize..6,
        batch_size in 1usize..5,
        delete_tenths in 0usize..5,
        cut_salt in 0u64..10_000,
    ) {
        let _serial = serial();
        let case = fresh_case();
        let cfg = StreamConfig {
            batch_size,
            delete_fraction: delete_tenths as f64 / 10.0,
            genres: 3,
            directors: 3,
            payload_prefix: format!("prop-wal-{case}-"),
            ..StreamConfig::default()
        };
        let plan = RecoveryPlan::generate(seed, cfg, 12, nbatches);
        let view_list = [("all", rel("M"), Strategy::FirstOrder)];
        let states = common::recovery_plan_states(&plan, &view_list);

        let dir = TempDir::new("wal", case);
        std::fs::create_dir_all(dir.path()).expect("mkdir");
        let path = dir.path().join(wal::segment_file_name(0));
        let mut log = Wal::create(&path, 0, FsyncPolicy::Never, None).expect("create wal");
        for (i, batch) in plan.batches.iter().enumerate() {
            log.append(i as u64 + 1, &UpdateBatch::from_updates(batch.iter().cloned()))
                .expect("append");
        }
        drop(log);

        // Scanning twice observes the identical record sequence and leaves
        // the file untouched.
        let full = wal::scan(&path, 0).expect("scan");
        let again = wal::scan(&path, 0).expect("rescan");
        let indices: Vec<u64> = full.batch_records().map(|r| r.batch_index).collect();
        prop_assert_eq!(
            &indices,
            &again.batch_records().map(|r| r.batch_index).collect::<Vec<_>>()
        );
        prop_assert_eq!(indices, (1..=nbatches as u64).collect::<Vec<_>>());
        prop_assert_eq!(full.torn_bytes(), 0);

        // Truncate at a random byte: the scan must yield a record prefix,
        // and replaying it lands exactly on the sequential state.
        let cut = kill_offsets(seed ^ cut_salt, full.file_len, 1)[0];
        let bytes = std::fs::read(&path).expect("read wal");
        let cut_path = dir.path().join(wal::segment_file_name(0)).with_extension("cut");
        std::fs::write(&cut_path, &bytes[..cut as usize]).expect("write cut");
        let prefix = wal::scan(&cut_path, 0).expect("scan cut");
        let k = prefix.batch_records().count();
        prop_assert!(k <= nbatches);
        prop_assert_eq!(
            prefix.batch_records().map(|r| r.batch_index).collect::<Vec<_>>(),
            (1..=k as u64).collect::<Vec<_>>(),
            "a truncated log must scan to a contiguous record prefix"
        );

        // Replay determinism/idempotence: folding the scanned prefix into
        // the replay helper twice gives the same state both times, equal
        // to the reference at batch index k.
        let replayed: Vec<Vec<(String, Bag)>> = plan.batches[..k].to_vec();
        for _ in 0..2 {
            let got = common::plan_states(plan.db.clone(), &replayed, &view_list);
            prop_assert_eq!(
                &got[k]["all"],
                &states[k]["all"],
                "prefix replay diverged at batch {}",
                k
            );
        }
    }

    /// Checkpoint round-trip across GC: persist under
    /// `CollectPolicy::Bounded`, drive arena slot reuse after the writer
    /// dies, recover, and require `scan`/`get`/`lookup_label` agreement —
    /// the on-disk format holds no arena-dependent state.
    ///
    /// Also the `recover_with_views` escape hatch and the integrity-gate
    /// fix: a caller spec the directory has never seen registers fresh
    /// after recovery instead of being misdiagnosed as checkpoint
    /// corruption (the old whole-set gate failed `Corrupt` here).
    #[test]
    fn checkpoint_round_trip_survives_slot_reuse(
        seed in 0u64..10_000,
        nbatches in 1usize..5,
        batch_size in 1usize..6,
        churn in 8usize..48,
    ) {
        let _serial = serial();
        let case = fresh_case();
        let cfg = StreamConfig {
            batch_size,
            delete_fraction: 0.4,
            genres: 3,
            directors: 3,
            payload_prefix: format!("prop-ckpt-{case}-"),
            ..StreamConfig::default()
        };
        let plan = RecoveryPlan::generate(seed, cfg, 10, nbatches);
        let specs = [
            ViewSpec::new("all", rel("M"), Strategy::FirstOrder),
            ViewSpec::new("sh", related_query(), Strategy::Shredded),
        ];

        let dir = TempDir::new("ckpt", case);
        let mut sys = DurableSystem::create(
            dir.path(),
            plan.db.clone(),
            &specs,
            opts(FsyncPolicy::Never, 1, None),
        ).expect("create");
        sys.set_collect_policy(CollectPolicy::Bounded { max_slots: 4, every: 1 });
        for batch in &plan.batches {
            sys.apply_batch(&UpdateBatch::from_updates(batch.iter().cloned()))
                .expect("apply");
        }
        sys.checkpoint_now().expect("checkpoint");
        let all_before = scan_pairs(&sys);
        let related_before = related_pairs(&sys);
        drop(sys);

        // Drive slot reuse: drain the dropped system's garbage, then churn
        // fresh payloads into the freed slots. If a Vid (rather than its
        // value) had leaked into the checkpoint, recovery below would now
        // resolve it against a reused slot.
        common::drain();
        let churn_case = fresh_case();
        let churn_bag = Bag::from_values(
            (0..churn as u16).map(|i| common::payload("prop-ckpt-churn", churn_case, i)),
        );

        // An extra spec the directory has never seen rides along: the old
        // integrity gate called this corruption; it must register fresh.
        let mut with_extra = specs.to_vec();
        with_extra.push(ViewSpec::new("all2", rel("M"), Strategy::Recursive));
        let (rec, rstats) = DurableSystem::recover_with_views(
            dir.path(),
            &with_extra,
            opts(FsyncPolicy::Never, 1, None),
        ).expect("recover across GC");
        prop_assert_eq!(
            rstats.batches_replayed, 0,
            "the tip checkpoint leaves nothing to replay"
        );
        prop_assert_eq!(rec.batch_index(), nbatches as u64);
        prop_assert_eq!(
            rec.view("all2").expect("fresh extra view"),
            rec.view("all").expect("recovered view"),
            "the never-cataloged extra spec must register fresh over the recovered db"
        );

        // scan: identical ordered pairs; get: identical multiplicities.
        let all_after = scan_pairs(&rec);
        prop_assert_eq!(&all_before, &all_after, "scan diverged across the round-trip");
        let snap = rec.snapshot();
        for (v, m) in &all_before {
            prop_assert_eq!(snap.get("all", v).expect("get"), *m);
        }
        drop(snap);

        // lookup_label: the recovered shredded view's label indirection
        // resolves every flat tuple to the same (name, inner-bag) multiset
        // the original served — label *identity* may differ across runs,
        // label *meaning* may not.
        prop_assert_eq!(
            related_before,
            related_pairs(&rec),
            "label resolution diverged across the round-trip"
        );
        drop(churn_bag);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(8))]

    /// Point-in-time differential: `recover_at(k)` must equal the
    /// uncrashed sequential replay at batch `k` for every retained `k` —
    /// at, below and above checkpoint indices — must be read-only and
    /// idempotent, and must leave the directory recoverable to its tip.
    /// Under `TruncateAtCheckpoint`, pruned targets fail `HistoryTruncated`
    /// and surviving ones still match the replay.
    #[test]
    fn point_in_time_recovery_matches_replay(
        seed in 0u64..10_000,
        nbatches in 1usize..7,
        batch_size in 1usize..5,
        delete_tenths in 0usize..5,
        checkpoint_every in 0u64..4,
        k_salt in 0u64..10_000,
    ) {
        let _serial = serial();
        let case = fresh_case();
        let cfg = StreamConfig {
            batch_size,
            delete_fraction: delete_tenths as f64 / 10.0,
            genres: 3,
            directors: 3,
            payload_prefix: format!("prop-pit-{case}-"),
            ..StreamConfig::default()
        };
        let plan = RecoveryPlan::generate(seed, cfg, 12, nbatches);
        let view_list = [
            ("all", rel("M"), Strategy::FirstOrder),
            ("flt", query_pool(1), Strategy::Reevaluate),
        ];
        let states = common::recovery_plan_states(&plan, &view_list);
        let specs: Vec<ViewSpec> = view_list
            .iter()
            .map(|(n, q, s)| ViewSpec::new(*n, q.clone(), *s))
            .collect();
        let n = nbatches as u64;

        let dir = TempDir::new("pit", case);
        let mut sys = DurableSystem::create(
            dir.path(),
            plan.db.clone(),
            &specs,
            opts(FsyncPolicy::Never, checkpoint_every, None),
        ).expect("create");
        for batch in &plan.batches {
            sys.apply_batch(&UpdateBatch::from_updates(batch.iter().cloned()))
                .expect("apply");
        }
        drop(sys);

        // Targets: origin, tip, a random interior k, and (when periodic
        // checkpoints ran) the newest checkpoint boundary itself plus the
        // index just below it — the seams where off-by-ones live.
        let mut ks = vec![0, n, k_salt % (n + 1)];
        if checkpoint_every > 0 && n >= checkpoint_every {
            let boundary = (n / checkpoint_every) * checkpoint_every;
            ks.push(boundary);
            ks.push(boundary.saturating_sub(1));
        }
        for &k in &ks {
            let (hist, hstats) = DurableSystem::recover_at(
                dir.path(),
                k,
                opts(FsyncPolicy::Never, checkpoint_every, None),
            ).expect("recover_at");
            prop_assert_eq!(hist.batch_index(), k, "recover_at must land exactly on k");
            prop_assert!(hstats.checkpoint_index <= k);
            check_views(&hist, &states[k as usize], "in the historical snapshot")?;

            // Read-only: no writes, registrations or checkpoints, and the
            // directory is untouched (not even torn-tail truncation).
            prop_assert!(hist.is_read_only());
            prop_assert_eq!(hstats.torn_bytes_truncated, 0);
            let mut hist = hist;
            prop_assert!(matches!(
                hist.apply_batch(&UpdateBatch::from_updates(plan.batches[0].iter().cloned())),
                Err(DurableError::ReadOnly)
            ));
            prop_assert!(matches!(
                hist.register_query("nope", FILTER_SRC),
                Err(DurableError::ReadOnly)
            ));
            prop_assert!(matches!(hist.checkpoint_now(), Err(DurableError::ReadOnly)));
            drop(hist);

            // Idempotence: the same point twice is the same state.
            let (hist2, _) = DurableSystem::recover_at(
                dir.path(),
                k,
                opts(FsyncPolicy::Never, checkpoint_every, None),
            ).expect("recover_at twice");
            check_views(&hist2, &states[k as usize], "recovering at k a second time")?;
        }

        // Beyond the tip clamps to the tip.
        let (past, _) = DurableSystem::recover_at(
            dir.path(),
            n + 5,
            opts(FsyncPolicy::Never, checkpoint_every, None),
        ).expect("recover_at past the tip");
        prop_assert_eq!(past.batch_index(), n);
        drop(past);

        // The historical reads mutated nothing: full recovery still lands
        // on the tip state.
        let (tip, _) = DurableSystem::recover(
            dir.path(),
            opts(FsyncPolicy::Never, checkpoint_every, None),
        ).expect("tip recovery after time travel");
        prop_assert_eq!(tip.batch_index(), n);
        check_views(&tip, &states[nbatches], "at the tip after historical reads")?;
        drop(tip);

        // --- Retention: TruncateAtCheckpoint prunes history loudly ---
        let dir_tr = TempDir::new("pit-trunc", case);
        let tr_opts = DurableOptions {
            fsync: FsyncPolicy::Never,
            checkpoint_every: 2,
            retention: LogRetention::TruncateAtCheckpoint,
            kill: None,
        };
        let mut sys = DurableSystem::create(dir_tr.path(), plan.db.clone(), &specs, tr_opts.clone())
            .expect("create truncating");
        for batch in &plan.batches {
            sys.apply_batch(&UpdateBatch::from_updates(batch.iter().cloned()))
                .expect("apply");
        }
        let newest_ckpt = sys.durable_stats().last_checkpoint_index;
        drop(sys);
        for k in 0..=n {
            let res = DurableSystem::recover_at(dir_tr.path(), k, tr_opts.clone());
            if k < newest_ckpt {
                prop_assert!(
                    matches!(res, Err(DurableError::HistoryTruncated { .. })),
                    "pruned target {} must fail HistoryTruncated, not answer wrong",
                    k
                );
            } else {
                let (hist, _) = res.expect("retained point-in-time");
                check_views(&hist, &states[k as usize], "under TruncateAtCheckpoint")?;
            }
        }
    }

    /// Catalog recovery: a view registered from query text mid-stream
    /// comes back from the directory alone — no caller `ViewSpec`s — with
    /// the registration replayed from its WAL record in stream order, and
    /// a kill inside `register_query`'s durable write never leaves the
    /// directory unrecoverable (the regression the old forced-checkpoint
    /// design hit: its whole-set integrity gate failed `Corrupt` on any
    /// checkpoint written mid-registration).
    #[test]
    fn catalog_recovers_text_registrations(
        seed in 0u64..10_000,
        nbatches in 2usize..7,
        batch_size in 1usize..5,
        reg_after in 0usize..6,
        kill_salt in 0u64..10_000,
    ) {
        let _serial = serial();
        let case = fresh_case();
        let reg_after = reg_after.min(nbatches - 1);
        let cfg = StreamConfig {
            batch_size,
            delete_fraction: 0.2,
            genres: 3,
            directors: 3,
            payload_prefix: format!("prop-cat-{case}-"),
            ..StreamConfig::default()
        };
        let plan = RecoveryPlan::generate(seed, cfg, 12, nbatches);
        let specs = [ViewSpec::new("all", rel("M"), Strategy::FirstOrder)];

        // --- Reference run: register "late" mid-stream, meter the bytes ---
        let meter = KillPoint::arm(u64::MAX);
        let dir = TempDir::new("cat", case);
        let mut sys = DurableSystem::create(
            dir.path(),
            plan.db.clone(),
            &specs,
            opts(FsyncPolicy::Never, 0, Some(Arc::clone(&meter))),
        ).expect("create");
        for batch in &plan.batches[..reg_after] {
            sys.apply_batch(&UpdateBatch::from_updates(batch.iter().cloned()))
                .expect("apply");
        }
        let before_reg = u64::MAX - meter.remaining();
        sys.register_query("late", FILTER_SRC).expect("register late");
        let after_reg = u64::MAX - meter.remaining();
        prop_assert!(after_reg > before_reg, "registration must write log bytes");
        for batch in &plan.batches[reg_after..] {
            sys.apply_batch(&UpdateBatch::from_updates(batch.iter().cloned()))
                .expect("apply");
        }
        // Cadence: with checkpoint_every = 0, registration must NOT have
        // forced a checkpoint — only the creation-time one exists.
        prop_assert_eq!(
            sys.durable_stats().checkpoints_written, 1,
            "register_query must respect checkpoint_every (no forced checkpoint)"
        );
        let late_before = sys.view("late").expect("live late view");
        let all_before = sys.view("all").expect("live all view");
        drop(sys);

        // --- Catalog-only recovery: no specs at all ---
        let (rec, rstats) = DurableSystem::recover(
            dir.path(),
            opts(FsyncPolicy::Never, 0, None),
        ).expect("catalog recovery");
        prop_assert_eq!(rec.batch_index(), nbatches as u64);
        prop_assert_eq!(
            rstats.registrations_replayed, 1,
            "the late registration lives in the log, not the origin checkpoint"
        );
        prop_assert_eq!(&rec.view("late").expect("recovered late"), &late_before);
        prop_assert_eq!(&rec.view("all").expect("recovered all"), &all_before);
        prop_assert_eq!(rec.catalog().len(), 2, "create view + late view");
        // Checkpoint the recovered state: the catalog moves into the
        // checkpoint, so the next recovery replays no registrations.
        let mut rec = rec;
        rec.checkpoint_now().expect("checkpoint recovered state");
        drop(rec);
        let (rec2, rstats2) = DurableSystem::recover(
            dir.path(),
            opts(FsyncPolicy::Never, 0, None),
        ).expect("recovery after checkpoint");
        prop_assert_eq!(rstats2.registrations_replayed, 0);
        prop_assert_eq!(&rec2.view("late").expect("late from checkpoint catalog"), &late_before);
        drop(rec2);

        // --- Kill inside register_query's durable write ---
        let reg_bytes = after_reg - before_reg;
        let budget = before_reg + 1 + (kill_salt % reg_bytes);
        let dir_k = TempDir::new("cat-kill", case);
        let mut sys = DurableSystem::create(
            dir_k.path(),
            plan.db.clone(),
            &specs,
            opts(FsyncPolicy::Never, 0, Some(KillPoint::arm(budget))),
        ).expect("create killed");
        for batch in &plan.batches[..reg_after] {
            sys.apply_batch(&UpdateBatch::from_updates(batch.iter().cloned()))
                .expect("apply before register");
        }
        let reg = sys.register_query("late", FILTER_SRC);
        let reg_acked = match reg {
            Ok(_) => true,
            Err(e) => {
                prop_assert!(e.is_kill(), "only the injected kill may fail: {}", e);
                prop_assert!(sys.is_dead(), "a torn registration poisons the instance");
                false
            }
        };
        drop(sys);
        // The regression: whatever byte the kill landed on, the directory
        // recovers — with the view iff its record was acked.
        let (rec_k, _) = DurableSystem::recover(
            dir_k.path(),
            opts(FsyncPolicy::Never, 0, None),
        ).expect("recovery after mid-registration kill");
        prop_assert_eq!(rec_k.batch_index(), reg_after as u64);
        prop_assert!(rec_k.view("all").is_ok(), "creation views always recover");
        if reg_acked {
            prop_assert!(rec_k.view("late").is_ok(), "acked registration must survive");
        } else {
            prop_assert!(rec_k.view("late").is_err(), "unacked registration is torn away");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(6))]

    /// Backfill differential: for every maintenance strategy, a view
    /// backfilled after the whole stream must equal the same view
    /// registered from batch 0 — the final state, the synthesized
    /// per-batch delta history, and the live deltas that follow — and its
    /// history must fold from ∅ to the live state (the Σ-of-deltas
    /// invariant). `TruncateAtCheckpoint` fails it loudly instead.
    #[test]
    fn backfill_equals_registered_from_start(
        seed in 0u64..10_000,
        nbatches in 1usize..6,
        batch_size in 1usize..5,
        delete_tenths in 0usize..5,
        checkpoint_every in 0u64..3,
        strat_idx in 0usize..4,
    ) {
        let _serial = serial();
        let case = fresh_case();
        let cfg = StreamConfig {
            batch_size,
            delete_fraction: delete_tenths as f64 / 10.0,
            genres: 3,
            directors: 3,
            payload_prefix: format!("prop-bf-{case}-"),
            ..StreamConfig::default()
        };
        let plan = RecoveryPlan::generate(seed, cfg, 12, nbatches);
        let n = nbatches as u64;
        let strategy = [
            Strategy::Reevaluate,
            Strategy::FirstOrder,
            Strategy::Recursive,
            Strategy::Shredded,
        ][strat_idx];

        // --- Reference: registered from batch 0, feed drained live ---
        let dir_ref = TempDir::new("bf-ref", case);
        let mut sys_ref = DurableSystem::create(
            dir_ref.path(),
            plan.db.clone(),
            &[],
            opts(FsyncPolicy::Never, checkpoint_every, None),
        ).expect("create reference");
        sys_ref.register_query_with("v", FILTER_SRC, strategy).expect("register from start");
        let origin_state = sys_ref.view("v").expect("origin state");
        let sub_ref = sys_ref.subscribe("v", nbatches + 4).expect("subscribe");
        for batch in &plan.batches {
            sys_ref
                .apply_batch(&UpdateBatch::from_updates(batch.iter().cloned()))
                .expect("reference apply");
        }
        let ref_deltas = sub_ref.drain();
        prop_assert_eq!(sub_ref.dropped(), 0);
        prop_assert_eq!(ref_deltas.len(), nbatches);

        // --- Backfilled: same stream, view registered only at the end ---
        let dir_bf = TempDir::new("bf", case);
        let mut sys_bf = DurableSystem::create(
            dir_bf.path(),
            plan.db.clone(),
            &[],
            opts(FsyncPolicy::Never, checkpoint_every, None),
        ).expect("create backfill");
        for batch in &plan.batches {
            sys_bf
                .apply_batch(&UpdateBatch::from_updates(batch.iter().cloned()))
                .expect("backfill apply");
        }
        let bf = sys_bf.backfill_query_with("v", FILTER_SRC, strategy).expect("backfill");
        prop_assert_eq!(bf.batches_replayed, n);
        prop_assert_eq!(
            &sys_bf.view("v").expect("backfilled view"),
            &sys_ref.view("v").expect("reference view"),
            "backfilled final state diverged from registered-from-start"
        );

        // History: a batch-0 delta carrying the origin state, then exactly
        // the deltas the from-start feed delivered, index for index.
        let hist = bf.feed.drain();
        prop_assert_eq!(bf.feed.dropped(), 0);
        prop_assert_eq!(hist.len(), nbatches + 1);
        prop_assert_eq!(hist[0].batch_index, 0);
        prop_assert_eq!(&hist[0].delta, &origin_state);
        for (i, (got, want)) in hist[1..].iter().zip(&ref_deltas).enumerate() {
            prop_assert_eq!(got.batch_index, i as u64 + 1);
            prop_assert_eq!(want.batch_index, i as u64 + 1);
            prop_assert_eq!(
                &got.delta,
                &want.delta,
                "synthesized delta {} diverged from the live feed",
                i + 1
            );
        }

        // Σ-of-deltas: the history folds from ∅ to the live state.
        let mut folded = Bag::default();
        for d in &hist {
            folded.union_assign(&d.delta);
        }
        prop_assert_eq!(&folded, &sys_bf.view("v").expect("live state"));

        // Live continuation: one more batch lands in both feeds at the
        // same stream-absolute index with the same delta.
        let extra = UpdateBatch::from_updates(plan.batches[0].iter().cloned());
        sys_ref.apply_batch(&extra).expect("reference continuation");
        sys_bf.apply_batch(&extra).expect("backfill continuation");
        let cont_ref = sub_ref.drain();
        let cont_bf = bf.feed.drain();
        prop_assert_eq!(cont_ref.len(), 1);
        prop_assert_eq!(cont_bf.len(), 1);
        prop_assert_eq!(cont_bf[0].batch_index, n + 1);
        prop_assert_eq!(cont_ref[0].batch_index, n + 1);
        prop_assert_eq!(&cont_bf[0].delta, &cont_ref[0].delta);
        drop(sys_ref);
        drop(sys_bf);

        // --- Retention: truncated history refuses to backfill ---
        if nbatches >= 2 {
            let dir_tr = TempDir::new("bf-trunc", case);
            let tr_opts = DurableOptions {
                fsync: FsyncPolicy::Never,
                checkpoint_every: 2,
                retention: LogRetention::TruncateAtCheckpoint,
                kill: None,
            };
            let mut sys_tr = DurableSystem::create(dir_tr.path(), plan.db.clone(), &[], tr_opts)
                .expect("create truncating");
            for batch in &plan.batches {
                sys_tr
                    .apply_batch(&UpdateBatch::from_updates(batch.iter().cloned()))
                    .expect("apply");
            }
            prop_assert!(
                matches!(
                    sys_tr.backfill_query_with("v", FILTER_SRC, strategy),
                    Err(DurableError::HistoryTruncated { .. })
                ),
                "backfill over a truncated log must fail loudly"
            );
        }
    }
}

/// Ordered `(value, multiplicity)` scan of the `all` view via the
/// published snapshot.
fn scan_pairs(sys: &DurableSystem) -> Vec<(Value, i64)> {
    sys.snapshot().scan("all", usize::MAX).expect("scan")
}

/// The shredded `related` view decoded through its label indirection: each
/// flat tuple `<name, label>` resolved to `(name, inner pairs, mult)` via
/// `Snapshot::lookup_label`, sorted — a label-allocation-independent
/// fingerprint of the view's meaning.
#[allow(clippy::type_complexity)]
fn related_pairs(sys: &DurableSystem) -> Vec<(Value, Vec<(Value, i64)>, i64)> {
    let flat = match sys.serving().engine().view_state("sh").expect("view state") {
        ViewStateSnapshot::Shredded { flat, .. } => flat.clone(),
        other => panic!("sh must snapshot shredded, got {other:?}"),
    };
    let snap = sys.snapshot();
    let mut out: Vec<(Value, Vec<(Value, i64)>, i64)> = flat
        .iter()
        .map(|(v, m)| {
            let name = v.project(0).expect("name field").clone();
            let label = v
                .project(1)
                .expect("label field")
                .as_label()
                .expect("label")
                .clone();
            let inner = snap
                .lookup_label("sh", &label)
                .expect("lookup")
                .expect("label must define a bag");
            (name, inner.iter().map(|(x, k)| (x.clone(), k)).collect(), m)
        })
        .collect();
    out.sort();
    out
}
