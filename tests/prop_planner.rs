//! Property suites for the text-based registration path:
//!
//! * **Pretty-print fixpoint.** For generated well-typed queries,
//!   `to_surface → parse_program → to_surface` is a fixpoint: printing the
//!   reparsed query reproduces the printed text byte-for-byte. (The parsed
//!   *tree* may differ from the original — the printer re-sugars `where`
//!   clauses and tuple literals — but one print/parse cycle must be
//!   idempotent, or the surface syntax silently drifts.)
//! * **Fuzzed registration.** `register_query` over arbitrarily mutated
//!   query strings never panics: it either registers a view or returns a
//!   spanned `NrcError` whose span lies inside the source and whose
//!   `render` produces a caret line.

use nrc_core::generator::{GenConfig, QueryGen};
use nrc_data::database::example_movies;
use nrc_data::Type;
use nrc_engine::{IvmSystem, NrcError};
use nrc_parser::{parse_program, to_surface};
use proptest::prelude::*;

/// Render a type in the surface syntax (`Int`, `Str`, `Bool`, `Bag(T)`,
/// `(T, …)`).
fn render_type(t: &Type) -> String {
    match t {
        Type::Base(b) => format!("{b:?}"),
        Type::Bag(e) => format!("Bag({})", render_type(e)),
        Type::Tuple(ts) => {
            let parts: Vec<String> = ts.iter().map(render_type).collect();
            format!("({})", parts.join(", "))
        }
        other => panic!("generator produced unexpected type {other:?}"),
    }
}

/// Render `db`'s schemas as `relation` declarations (named fields `f0…`),
/// or `None` when a relation's element type is not a tuple (the program
/// grammar only declares tuple rows).
fn render_decls(db: &nrc_data::Database) -> Option<String> {
    let mut out = String::new();
    for name in db.relation_names() {
        let Type::Tuple(ts) = db.schema(name)? else {
            return None;
        };
        let fields: Vec<String> = ts
            .iter()
            .enumerate()
            .map(|(i, t)| format!("f{i}: {}", render_type(t)))
            .collect();
        out.push_str(&format!("relation {name}({});\n", fields.join(", ")));
    }
    Some(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `to_surface → parse_program → to_surface` fixpoint on generated
    /// queries (those the printer supports over tuple-rowed databases).
    #[test]
    fn pretty_parse_pretty_is_a_fixpoint(seed0 in 0u64..100_000) {
        // Scan forward to the next seed whose database declares only tuple
        // rows (the program grammar can't spell scalar-rowed relations), so
        // every case exercises the property instead of ~1 in 5.
        let (decls, q, seed) = 'found: {
            for seed in seed0.. {
                let mut qg = QueryGen::new(seed, GenConfig::default());
                let db = qg.gen_database();
                if let Some(decls) = render_decls(&db) {
                    break 'found (decls, qg.gen_query(&db), seed);
                }
            }
            unreachable!("tuple-rowed databases are dense in the seed space");
        };
        let Ok(s1) = to_surface(&q) else { return Ok(()) };

        let src = format!("{decls}query q := {s1};");
        let program = match parse_program(&src) {
            Ok(p) => p,
            Err(e) => panic!("printed query failed to reparse: {}\n{}", e.render(&src), src),
        };
        prop_assert_eq!(program.queries.len(), 1);
        let s2 = to_surface(&program.queries[0].1)
            .expect("reparsed query must stay printable");
        prop_assert_eq!(&s1, &s2, "print → parse → print not a fixpoint for seed {}", seed);
    }

    /// Mutated query text through `register_query`: no panics, and every
    /// parse failure carries an in-bounds span that renders.
    #[test]
    fn register_query_never_panics_on_mutated_sources(
        base in 0usize..4,
        mutations in prop::collection::vec((0usize..200, 32u32..512), 0..8),
        truncate in 0usize..200,
    ) {
        let bases = [
            "for m in M where m.2 == \"Drama\" union sng(m)",
            "relation M(name: Str, gen: Str, dir: Str);\n\
             query q := for m in M union <m.name, m.gen>;",
            "for a in M union for b in M where a.1 == b.1 union sng(a)",
            "(for m in M union sng(m)) ++ -(for m in M union sng(m))",
        ];
        let mut chars: Vec<char> = bases[base].chars().collect();
        for (pos, code) in &mutations {
            if chars.is_empty() {
                break;
            }
            // ASCII plus 2-byte chars straight from the code point; fold
            // the top of the range onto 3- and 4-byte exemplars so every
            // UTF-8 width lands in the soup (spans must never split them).
            let c = match *code {
                480.. => '🦀',
                448..=479 => '→',
                _ => char::from_u32(*code).unwrap(),
            };
            let i = pos % chars.len();
            // Alternate replacement and insertion, keyed off the char.
            if *code % 2 == 0 {
                chars[i] = c;
            } else {
                chars.insert(i, c);
            }
        }
        if !chars.is_empty() {
            chars.truncate(1 + truncate % chars.len());
        }
        let src: String = chars.into_iter().collect();

        let mut sys = IvmSystem::new(example_movies());
        match sys.register_query("fuzzed", &src) {
            Ok(plan) => {
                // A mutated source may still be valid; the plan must be
                // coherent and the view live.
                prop_assert!(plan.candidates.len() == 4);
                prop_assert!(sys.view("fuzzed").is_ok());
            }
            Err(e) => {
                // Every error displays (exercises fragment quoting /
                // caret rendering) and chains to its source.
                let shown = e.to_string();
                prop_assert!(!shown.is_empty());
                prop_assert!(std::error::Error::source(&e).is_some());
                if let NrcError::Parse { error, src } = &e {
                    prop_assert!(error.span.start <= error.span.end);
                    prop_assert!(error.span.end <= src.len() + 1);
                    prop_assert!(error.render(src).contains('^'));
                }
            }
        }
    }
}
