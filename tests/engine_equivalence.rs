//! End-to-end engine property: every maintenance strategy computes the same
//! views as re-evaluation across random update sequences — first-order and
//! recursive for IncNRC⁺ queries, shredded for full NRC⁺ — and the batched
//! maintenance path (`apply_batch`) produces view states identical to
//! applying every update sequentially.

mod common;

use nrc_core::generator::{GenConfig, QueryGen};
use nrc_engine::{IvmSystem, Strategy};
use proptest::prelude::*;

#[test]
fn inc_strategies_agree_over_random_update_sequences() {
    for seed in 0..common::case_count(80) {
        let mut g = QueryGen::new(seed, GenConfig::default());
        let db = g.gen_database();
        let q = g.gen_inc_query(&db);
        let mut sys = IvmSystem::new(db.clone());
        sys.register("re", q.clone(), Strategy::Reevaluate)
            .expect("register re");
        sys.register("fo", q.clone(), Strategy::FirstOrder)
            .expect("register fo");
        sys.register("rc", q.clone(), Strategy::Recursive)
            .expect("register rc");
        let rels: Vec<String> = db.relation_names().cloned().collect();
        for step in 0..4 {
            let rel = &rels[step % rels.len()];
            let update = g.gen_update(sys.database(), rel);
            sys.apply_update(rel, &update)
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: update failed: {e}"));
            let expected = sys.view("re").expect("re view");
            assert_eq!(
                sys.view("fo").expect("fo view"),
                expected,
                "seed {seed} step {step}: first-order diverged for {q}"
            );
            assert_eq!(
                sys.view("rc").expect("rc view"),
                expected,
                "seed {seed} step {step}: recursive diverged for {q}"
            );
        }
    }
}

#[test]
fn shredded_strategy_agrees_on_full_nrc_queries() {
    let mut exercised = 0;
    for seed in 0..common::case_count(80) {
        let mut g = QueryGen::new(seed, GenConfig::default());
        let db = g.gen_database();
        let q = g.gen_query(&db);
        let mut sys = IvmSystem::new(db.clone());
        sys.register("re", q.clone(), Strategy::Reevaluate)
            .expect("register re");
        sys.register("sh", q.clone(), Strategy::Shredded)
            .expect("register sh");
        let rels: Vec<String> = db.relation_names().cloned().collect();
        for step in 0..3 {
            let rel = &rels[step % rels.len()];
            let update = g.gen_update(sys.database(), rel);
            match sys.apply_update(rel, &update) {
                Ok(()) => {}
                Err(nrc_engine::EngineError::UnmatchedDeletion(_)) => {
                    // A generated deletion can target a tuple that an
                    // earlier random deletion already removed; skip the step
                    // (the guard exists precisely to catch this).
                    continue;
                }
                Err(e) => panic!("seed {seed} step {step}: update failed: {e}"),
            }
            assert_eq!(
                sys.view("sh").expect("sh view"),
                sys.view("re").expect("re view"),
                "seed {seed} step {step}: shredded diverged for {q}"
            );
            exercised += 1;
        }
    }
    // Scale the coverage floor with the dialed case count (~3 steps/seed,
    // minus the skipped unmatched deletions).
    assert!(
        exercised as u64 > common::case_count(80),
        "only {exercised} shredded steps exercised"
    );
}

#[test]
fn stats_expose_incremental_behaviour() {
    // The re-evaluation baseline re-evaluates; IVM does not.
    let mut g = QueryGen::new(5, GenConfig::default());
    let db = g.gen_database();
    let q = g.gen_inc_query(&db);
    let mut sys = IvmSystem::new(db.clone());
    sys.register("re", q.clone(), Strategy::Reevaluate)
        .expect("re");
    sys.register("fo", q, Strategy::FirstOrder).expect("fo");
    for _ in 0..3 {
        let update = g.gen_update(sys.database(), "R0");
        sys.apply_update("R0", &update).expect("update");
    }
    assert_eq!(sys.stats("re").expect("stats").reevaluations, 4); // 1 + 3
    assert_eq!(sys.stats("fo").expect("stats").reevaluations, 1);
    assert_eq!(sys.stats("fo").expect("stats").updates_applied, 3);
}

#[test]
fn related_survives_a_long_mixed_update_stream() {
    // The §2 query maintained through 40 batches of mixed insertions and
    // deletions, checked against re-evaluation at every step, with
    // dictionary domain maintenance (new labels initialized, dead labels
    // collected) along the way.
    use nrc_core::builder::related_query;
    use nrc_workloads::MovieGen;

    let mut gen = MovieGen::new(99, 5, 7);
    let db = gen.database(60);
    let mut sys = IvmSystem::new(db);
    sys.register("re", related_query(), Strategy::Reevaluate)
        .expect("re");
    sys.register("sh", related_query(), Strategy::Shredded)
        .expect("sh");
    for step in 0..40 {
        let current = sys.database().get("M").expect("M").clone();
        let delta = gen.update(&current, 2, if step % 3 == 0 { 2 } else { 0 });
        sys.apply_update("M", &delta)
            .unwrap_or_else(|e| panic!("step {step}: {e}"));
        assert_eq!(
            sys.view("sh").expect("sh"),
            sys.view("re").expect("re"),
            "diverged at step {step}"
        );
    }
    let stats = sys.stats("sh").expect("stats");
    assert_eq!(stats.updates_applied, 40);
    // The dictionary domain tracks the live movie count.
    assert_eq!(
        stats.materialized_aux,
        sys.database().get("M").expect("M").distinct_count() as u64
    );
}

/// A system over the streaming movies schema with all four strategies
/// registered: a genre filter under re-evaluation, first-order and
/// recursive IVM, plus `related` under shredding (checked against its own
/// re-evaluation baseline).
fn batchable_system(db: nrc_data::Database) -> IvmSystem {
    use nrc_core::builder::{cmp_lit, filter_query, related_query};
    use nrc_core::expr::CmpOp;

    let q = filter_query("M", cmp_lit("x", vec![1], CmpOp::Eq, "genre0"));
    let mut sys = IvmSystem::new(db);
    sys.register("re", q.clone(), Strategy::Reevaluate)
        .expect("re");
    sys.register("fo", q.clone(), Strategy::FirstOrder)
        .expect("fo");
    sys.register("rc", q, Strategy::Recursive).expect("rc");
    sys.register("sh", related_query(), Strategy::Shredded)
        .expect("sh");
    sys.register("sh_re", related_query(), Strategy::Reevaluate)
        .expect("sh_re");
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(10))]

    /// `apply_batch(us)` yields view states identical to sequentially
    /// applying each `u ∈ us`, across all four maintenance strategies and
    /// both refresh execution modes.
    #[test]
    fn apply_batch_equals_sequential_updates(
        seed in 0u64..10_000,
        batch_sizes in prop::collection::vec(1usize..8, 1..4),
        delete_tenths in 0usize..6,
        parallel in any::<bool>(),
    ) {
        use nrc_engine::{Parallelism, UpdateBatch};
        use nrc_workloads::{StreamConfig, StreamGen};

        let mut gen = StreamGen::new(
            seed,
            StreamConfig {
                batch_size: 1, // sized per batch below
                delete_fraction: delete_tenths as f64 / 10.0,
                genres: 4,
                directors: 4,
                ..StreamConfig::default()
            },
        );
        let db = gen.database(25);
        let mut batched = batchable_system(db.clone());
        batched.set_parallelism(if parallel {
            Parallelism::Rayon
        } else {
            Parallelism::Sequential
        });
        let mut sequential = batchable_system(db);

        for size in batch_sizes {
            // One stream of `size` single-tuple updates, fed to both systems.
            let updates: Vec<(String, nrc_data::Bag)> =
                (0..size).flat_map(|_| gen.next_batch()).collect();
            for (rel, delta) in &updates {
                sequential.apply_update(rel, delta).expect("sequential update");
            }
            batched
                .apply_batch(&UpdateBatch::from_updates(updates))
                .expect("batched update");

            for view in ["re", "fo", "rc", "sh", "sh_re"] {
                prop_assert_eq!(
                    batched.view(view).expect("batched view"),
                    sequential.view(view).expect("sequential view"),
                    "view {} diverged (parallel={})", view, parallel
                );
            }
            // All four strategies agree with each other through the batched
            // path: re/fo/rc maintain the same filter query, sh its own
            // re-evaluation baseline.
            let baseline = batched.view("re").expect("re view");
            for view in ["fo", "rc"] {
                prop_assert_eq!(
                    batched.view(view).expect("strategy view"),
                    baseline.clone(),
                    "strategy {} diverged from re-evaluation under apply_batch", view
                );
            }
            prop_assert_eq!(
                batched.view("sh").expect("sh view"),
                batched.view("sh_re").expect("sh_re view"),
                "shredded diverged from re-evaluation under apply_batch"
            );
            prop_assert_eq!(batched.database(), sequential.database());
        }
    }
}

#[test]
fn nested_inputs_with_mixed_insert_delete_streams() {
    // Relations whose *elements* contain bags: deletions must resolve the
    // stored labels (fresh labels would not cancel) — exercised across a
    // stream.
    use nrc_core::builder::{elem_sng, flatten, for_, proj_sng, rel};
    use nrc_workloads::OrdersGen;

    let mut gen = OrdersGen::new(4, 500);
    let db = gen.database(12, 3, 4);
    let mut sys = IvmSystem::new(db);
    let items_q = flatten(for_("c", rel("Customers"), proj_sng("c", vec![2])));
    let all_orders = flatten(items_q.clone());
    sys.register(
        "re",
        for_("c", rel("Customers"), elem_sng("c")),
        Strategy::Reevaluate,
    )
    .expect("re");
    sys.register(
        "sh",
        for_("c", rel("Customers"), elem_sng("c")),
        Strategy::Shredded,
    )
    .expect("sh");
    sys.register("orders_re", items_q.clone(), Strategy::Reevaluate)
        .expect("orders re");
    sys.register("orders_sh", items_q, Strategy::Shredded)
        .expect("orders sh");
    drop(all_orders);
    for step in 0..10 {
        // Alternate: insert a customer / delete an existing one.
        let delta = if step % 2 == 0 {
            gen.customer_batch(1, 2, 3)
        } else {
            let current = sys.database().get("Customers").expect("C");
            let (v, _) = current.iter().next().expect("non-empty");
            nrc_data::Bag::from_pairs([(v.clone(), -1)])
        };
        sys.apply_update("Customers", &delta)
            .unwrap_or_else(|e| panic!("step {step}: {e}"));
        assert_eq!(
            sys.view("sh").unwrap(),
            sys.view("re").unwrap(),
            "step {step}"
        );
        assert_eq!(
            sys.view("orders_sh").unwrap(),
            sys.view("orders_re").unwrap(),
            "orders diverged at step {step}"
        );
    }
}
