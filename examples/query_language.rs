//! The surface query language: declare schemas and queries as text, then
//! maintain every query incrementally.
//!
//! ```text
//! cargo run --example query_language
//! ```

use nrc_data::{Bag, Database, Value};
use nrc_engine::{IvmSystem, Strategy};
use nrc_parser::parse_program;
use nrc_workloads::MovieGen;

const PROGRAM: &str = r#"
-- the §2 schema
relation M(name: Str, gen: Str, dir: Str);

-- all genres (a flat projection)
query genres := for m in M union sng(m.gen);

-- dramas only (filter sugar)
query dramas := for m in M where m.gen == "genre0" union sng(m.name);

-- per-movie related titles (nested output: needs shredding to maintain)
query related :=
  for m in M union
    <m.name,
     for m2 in M
       where m.name != m2.name && (m.gen == m2.gen || m.dir == m2.dir)
       union sng(m2.name)>;
"#;

fn main() {
    let prog = parse_program(PROGRAM).expect("parse program");

    // Materialize the declared relations with generated data.
    let mut gen = MovieGen::new(11, 3, 3);
    let mut db = Database::new();
    for rel in &prog.relations {
        db.insert_relation(rel.name.clone(), rel.elem_ty.clone(), gen.bag(6));
    }

    let mut sys = IvmSystem::new(db);
    for (name, q) in &prog.queries {
        // Nested-output queries need the shredded strategy; flat ones can
        // use classical first-order IVM.
        let strategy = if q.is_inc_nrc() {
            Strategy::FirstOrder
        } else {
            Strategy::Shredded
        };
        println!("registering `{name}` under {strategy:?}:\n  {q}\n");
        sys.register(name.clone(), q.clone(), strategy)
            .expect("register");
    }

    let show = |sys: &IvmSystem, label: &str| {
        println!("--- {label} ---");
        for (name, _) in &prog.queries {
            let view = sys.view(name).expect("view");
            println!(
                "{name} ({} distinct): {}",
                view.distinct_count(),
                preview(&view)
            );
        }
        println!();
    };
    show(&sys, "initial");

    let batch = gen.bag(3);
    println!("applying ΔM = {batch}\n");
    sys.apply_update("M", &batch).expect("update");
    show(&sys, "after ΔM");
}

fn preview(bag: &Bag) -> String {
    let items: Vec<String> = bag.iter().take(3).map(|(v, _)| short(v)).collect();
    let suffix = if bag.distinct_count() > 3 {
        ", …"
    } else {
        ""
    };
    format!("{{{}{suffix}}}", items.join(", "))
}

fn short(v: &Value) -> String {
    let s = v.to_string();
    if s.len() > 60 {
        format!(
            "{}…",
            &s[..s
                .char_indices()
                .take(57)
                .last()
                .map(|(i, c)| i + c.len_utf8())
                .unwrap_or(0)]
        )
    } else {
        s
    }
}
