//! The paper's motivating example (§2), end to end.
//!
//! The `related` query computes, for every movie, the bag of movies sharing
//! its genre or director. It is *not* in IncNRC⁺ — its nested singleton
//! depends on the database — so classical delta processing cannot maintain
//! it. The engine shreds it (§5): inner bags become labels, their contents
//! live in an incrementally maintained dictionary, and the update
//! `ΔM = {⟨Jarhead, Drama, Mendes⟩}` reaches the inner bags of Drive and
//! Skyfall as plain dictionary `⊎` — the "deep updates" the paper is about.
//!
//! ```text
//! cargo run --example movies_related
//! ```

use nrc_data::database::{example_movies, example_movies_update};
use nrc_data::{Bag, Value};
use nrc_engine::{IvmSystem, Strategy};
use nrc_parser::{parse_expr, NameTree, RelationDecl};

fn main() {
    let db = example_movies();
    println!("M = {}\n", db.get("M").expect("M"));

    // The query in surface syntax, exactly as §2.1 writes it.
    let decl = RelationDecl {
        name: "M".into(),
        elem_ty: db.schema("M").expect("schema").clone(),
        names: NameTree::Fields(vec![
            ("name".into(), NameTree::None),
            ("gen".into(), NameTree::None),
            ("dir".into(), NameTree::None),
        ]),
    };
    let related = parse_expr(
        "for m in M union
           <m.name,
            for m2 in M
              where m.name != m2.name && (m.gen == m2.gen || m.dir == m2.dir)
              union sng(m2.name)>",
        &[decl],
    )
    .expect("parse related");
    println!("related ≡ {related}\n");

    let mut sys = IvmSystem::new(db);
    sys.register("related", related, Strategy::Shredded)
        .expect("register");
    print_view("related[M]", &sys.view("related").expect("view"));

    // Insert Jarhead; the maintained view must gain Jarhead rows *and*
    // deep-update Drive's and Skyfall's inner bags (paper's second table).
    sys.apply_update("M", &example_movies_update())
        .expect("update");
    print_view("related[M ⊎ ΔM]", &sys.view("related").expect("view"));

    // The shredded internals: the flat view and the label dictionary of
    // §2.2's relatedF / relatedΓ.
    let store = sys.store().expect("shredded store");
    let (flat, _) = &store.inputs["M"];
    println!(
        "shredded input M__F has {} flat tuples",
        flat.distinct_count()
    );
    let stats = sys.stats("related").expect("stats");
    println!(
        "dictionary definitions materialized: {} (one per movie, domain-maintained)",
        stats.materialized_aux
    );
}

fn print_view(title: &str, bag: &Bag) {
    println!("{title}:");
    for (v, _) in bag.iter() {
        let name = v.project(0).expect("name");
        let inner = v.project(1).expect("inner").as_bag().expect("bag");
        let names: Vec<String> = inner
            .iter()
            .map(|(w, _)| match w {
                Value::Base(b) => b.to_string(),
                other => other.to_string(),
            })
            .collect();
        println!("  {name} ↦ {{{}}}", names.join(", "));
    }
    println!();
}
