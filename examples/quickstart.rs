//! Quickstart: declare a relation, register an incrementally maintained
//! view, stream updates.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nrc_core::builder::{cmp_lit, filter_query};
use nrc_core::expr::CmpOp;
use nrc_data::{Bag, BaseType, Database, Type, Value};
use nrc_engine::{IvmSystem, Strategy};

fn main() {
    // A flat relation of integers.
    let mut db = Database::new();
    db.insert_relation(
        "R",
        Type::Base(BaseType::Int),
        Bag::from_values((0..10).map(Value::int)),
    );

    // The view keeps every element greater than 4, maintained by its delta
    // query (Prop. 4.1: h[R ⊎ ΔR] = h[R] ⊎ δ(h)[R, ΔR]).
    let q = filter_query("R", cmp_lit("x", vec![], CmpOp::Gt, 4i64));
    let mut sys = IvmSystem::new(db);
    sys.register("big", q, Strategy::FirstOrder)
        .expect("register view");
    println!("initial view: {}", sys.view("big").expect("view"));

    // Insertions and deletions are both just ⊎ with signed multiplicities.
    let updates = [
        Bag::from_values([Value::int(42), Value::int(3)]),
        Bag::from_pairs([(Value::int(7), -1), (Value::int(100), 2)]),
    ];
    for (i, delta) in updates.iter().enumerate() {
        sys.apply_update("R", delta).expect("apply update");
        println!("after update {}: {}", i + 1, sys.view("big").expect("view"));
    }

    let stats = sys.stats("big").expect("stats");
    println!(
        "maintained through {} updates with 1 full evaluation and {} refresh steps",
        stats.updates_applied, stats.refresh_steps
    );
}
