//! Recursive IVM (§4.1) on Example 4's query `h[R] = flatten(R) × flatten(R)`.
//!
//! Shows the higher-order delta tower (Thm. 2: one derivation per degree,
//! ending input-independent) and the runtime difference between first-order
//! and recursive maintenance on a "square of count" aggregate.
//!
//! ```text
//! cargo run --release --example recursive_ivm
//! ```

use nrc_core::builder::{flatten, for_, pair, rel, self_product_of_flatten, unit_sng};
use nrc_core::degree::degree_of;
use nrc_core::delta::delta_tower;
use nrc_core::typecheck::TypeEnv;
use nrc_engine::{IvmSystem, Strategy};
use nrc_workloads::SkewGen;
use std::time::Instant;

fn main() {
    // R : Bag(Bag(Int)) with 500 inner bags of 4 items.
    let mut gen = SkewGen::new(7, 1_000_000_000);
    let db = gen.database(&[500, 4]);
    let tenv = TypeEnv::from_database(&db);

    // --- The delta tower of Example 4 -----------------------------------
    let h = self_product_of_flatten("R");
    println!("h[R] = {h}");
    println!("deg(h) = {}\n", degree_of(&h));
    let tower = delta_tower(&h, "R", &tenv, 8).expect("tower");
    for (i, level) in tower.iter().enumerate() {
        println!("δ^{i}(h): degree {}  —  {level}", degree_of(level));
    }
    println!(
        "\nafter deg(h) = {} derivations the delta no longer mentions R:\n  δ²(h) is a pure \
         function of the updates (Thm. 2)\n",
        degree_of(&h)
    );

    // --- Runtime: recursive vs first-order on the square-of-count -------
    let cnt = || for_("x", flatten(rel("R")), unit_sng());
    let square = pair(cnt(), cnt());
    println!("g[R] = cnt(R) × cnt(R)   (cnt = for x in flatten(R) union sng(⟨⟩))");
    for (label, strategy) in [
        ("re-evaluation", Strategy::Reevaluate),
        ("first-order IVM", Strategy::FirstOrder),
        ("recursive IVM ", Strategy::Recursive),
    ] {
        let mut gen = SkewGen::new(7, 1_000_000_000);
        let db = gen.database(&[500, 4]);
        let mut sys = IvmSystem::new(db);
        sys.register("g", square.clone(), strategy)
            .expect("register");
        let start = Instant::now();
        for _ in 0..20 {
            let delta = gen.bag(&[2, 4]);
            sys.apply_update("R", &delta).expect("update");
        }
        let elapsed = start.elapsed();
        println!(
            "  {label}: 20 updates in {elapsed:?}  (materializations: {})",
            1 + sys.stats("g").expect("stats").materialized_aux
        );
    }
    println!(
        "\nrecursive IVM materializes cnt(R) once and maintains it with cnt(ΔR) — the delta \
         evaluation never walks R again (the paper's partial-evaluation argument)."
    );
}
