//! Deep updates on a customers → orders → items hierarchy (§5).
//!
//! Realistic updates to nested data are *deep*: "add an item to order 17"
//! should not rewrite the customer tuple that contains it. In the shredded
//! representation the order's items bag is a label, and the update is one
//! dictionary `⊎` on that label's definition.
//!
//! ```text
//! cargo run --example nested_orders
//! ```

use nrc_core::builder::{elem_sng, for_, rel};
use nrc_data::{Bag, Value};
use nrc_engine::shredded::{DeepPath, ShreddedUpdate};
use nrc_engine::{IvmSystem, Strategy};
use nrc_workloads::OrdersGen;

fn main() {
    let mut gen = OrdersGen::new(3, 1000);
    let db = gen.database(3, 2, 3);
    let mut sys = IvmSystem::new(db);
    sys.register(
        "customers",
        for_("c", rel("Customers"), elem_sng("c")),
        Strategy::Shredded,
    )
    .expect("register");

    println!("before:");
    print_customers(&sys.view("customers").expect("view"));

    // Find the items-bag label of customer 0's first order.
    let store = sys.store().expect("store");
    let (flat, ctx) = &store.inputs["Customers"];
    let orders_label = flat
        .iter()
        .find(|(c, _)| c.project(0).expect("id") == &Value::int(0))
        .map(|(c, _)| {
            c.project(2)
                .expect("orders")
                .as_label()
                .expect("label")
                .clone()
        })
        .expect("customer 0");
    let orders_dict = match ctx {
        Value::Tuple(cs) => match &cs[2] {
            Value::Tuple(node) => node[0].as_dict().expect("dict"),
            other => panic!("unexpected context {other}"),
        },
        other => panic!("unexpected context {other}"),
    };
    let items_label = orders_dict
        .lookup(&orders_label)
        .expect("orders definition")
        .iter()
        .next()
        .map(|(o, _)| {
            o.project(1)
                .expect("items")
                .as_label()
                .expect("label")
                .clone()
        })
        .expect("an order");

    // Deep update: three new items into that one inner bag.
    let upd = ShreddedUpdate::deep(
        &OrdersGen::customer_type(),
        &DeepPath::root().field(2).inner().field(1),
        items_label,
        Bag::from_values([Value::int(777), Value::int(778), Value::int(779)]),
    )
    .expect("deep update");
    println!("applying a deep update: ⊎ three items into one order's inner bag…\n");
    sys.apply_shredded_update("Customers", &upd).expect("apply");

    println!("after:");
    print_customers(&sys.view("customers").expect("view"));
    println!(
        "only one dictionary definition changed; no customer tuple was rewritten \
         (the paper's deep-update promise)."
    );
}

fn print_customers(bag: &Bag) {
    for (c, _) in bag.iter() {
        let id = c.project(0).expect("id");
        let name = c.project(1).expect("name");
        println!("  customer {id} ({name}):");
        for (o, _) in c.project(2).expect("orders").as_bag().expect("bag").iter() {
            let oid = o.project(0).expect("oid");
            let items = o.project(1).expect("items").as_bag().expect("bag");
            println!("    order {oid}: {items}");
        }
    }
    println!();
}
